// Copyright 2026 The Microbrowse Authors
//
// Kill-resume tests for the checkpointed cross-validation pipeline: a run
// interrupted by an injected fault must resume fold-by-fold and reproduce
// the uninterrupted run's report bit for bit.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "common/failpoint.h"
#include "corpus/generator.h"
#include "corpus/pair_extraction.h"
#include "microbrowse/checkpoint.h"
#include "microbrowse/pipeline.h"

namespace microbrowse {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

PairCorpus MakePairs(uint64_t seed) {
  AdCorpusOptions options;
  options.num_adgroups = 60;
  options.seed = seed;
  auto generated = GenerateAdCorpus(options);
  EXPECT_TRUE(generated.ok());
  return ExtractSignificantPairs(generated->corpus, {});
}

PipelineOptions BaseOptions() {
  PipelineOptions options;
  options.folds = 5;
  options.seed = 99;
  options.num_threads = 1;
  return options;
}

class PipelineResumeTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::DeactivateAll(); }
  void TearDown() override { failpoint::DeactivateAll(); }
};

TEST_F(PipelineResumeTest, KillAndResumeReproducesUninterruptedRunBitwise) {
  const PairCorpus pairs = MakePairs(7);
  ASSERT_GE(pairs.pairs.size(), 20u);
  const ClassifierConfig config = ClassifierConfig::M1();

  // Uninterrupted reference run, no checkpointing.
  PipelineOptions options = BaseOptions();
  auto reference = RunPairClassificationCv(pairs, config, options);
  ASSERT_TRUE(reference.ok());

  // "Kill" the run mid-flight: the fold failpoint fires on the third
  // trained fold, after two folds were checkpointed.
  options.checkpoint_dir = FreshDir("resume_ckpt");
  failpoint::Spec kill;
  kill.mode = failpoint::Spec::Mode::kNth;
  kill.nth = 3;
  failpoint::Activate("pipeline.fold", kill);
  auto interrupted = RunPairClassificationCv(pairs, config, options);
  ASSERT_FALSE(interrupted.ok());
  EXPECT_EQ(interrupted.status().code(), StatusCode::kIOError);
  failpoint::DeactivateAll();

  // The stats DB and the completed folds' scores must have been persisted.
  EXPECT_TRUE(std::filesystem::exists(options.checkpoint_dir + "/manifest.tsv"));
  EXPECT_TRUE(std::filesystem::exists(options.checkpoint_dir + "/stats.tsv"));
  EXPECT_TRUE(std::filesystem::exists(options.checkpoint_dir + "/fold_000.tsv"));

  // Resume. A count-only failpoint proves exactly one fold (the killed one)
  // is re-trained; the rest load from the checkpoint.
  failpoint::Spec count_only;
  count_only.mode = failpoint::Spec::Mode::kNever;
  failpoint::Activate("pipeline.fold", count_only);
  auto resumed = RunPairClassificationCv(pairs, config, options);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(failpoint::HitCount("pipeline.fold"), 1);
  failpoint::DeactivateAll();

  // Bit-for-bit identical to the uninterrupted run.
  EXPECT_EQ(resumed->metrics.true_positives, reference->metrics.true_positives);
  EXPECT_EQ(resumed->metrics.false_positives, reference->metrics.false_positives);
  EXPECT_EQ(resumed->metrics.true_negatives, reference->metrics.true_negatives);
  EXPECT_EQ(resumed->metrics.false_negatives, reference->metrics.false_negatives);
  EXPECT_EQ(resumed->auc, reference->auc);  // Exact double equality, intentionally.
  EXPECT_EQ(resumed->num_t_features, reference->num_t_features);
  EXPECT_EQ(resumed->num_p_features, reference->num_p_features);

  // A third run resumes everything: zero folds re-trained, same report.
  failpoint::Activate("pipeline.fold", count_only);
  auto fully_resumed = RunPairClassificationCv(pairs, config, options);
  ASSERT_TRUE(fully_resumed.ok());
  EXPECT_EQ(failpoint::HitCount("pipeline.fold"), 0);
  EXPECT_EQ(fully_resumed->auc, reference->auc);
  failpoint::DeactivateAll();

  std::filesystem::remove_all(options.checkpoint_dir);
}

TEST_F(PipelineResumeTest, ResumeWithChangedSettingsIsRejected) {
  const PairCorpus pairs = MakePairs(7);
  const ClassifierConfig config = ClassifierConfig::M1();
  PipelineOptions options = BaseOptions();
  options.checkpoint_dir = FreshDir("mismatch_ckpt");
  ASSERT_TRUE(RunPairClassificationCv(pairs, config, options).ok());

  options.seed = 100;  // Different run, same directory.
  auto mismatched = RunPairClassificationCv(pairs, config, options);
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(mismatched.status().message().find("fingerprint"), std::string::npos);
  std::filesystem::remove_all(options.checkpoint_dir);
}

TEST_F(PipelineResumeTest, MultiThreadedResumeMatchesSingleThreaded) {
  const PairCorpus pairs = MakePairs(11);
  const ClassifierConfig config = ClassifierConfig::M1();
  PipelineOptions options = BaseOptions();
  auto reference = RunPairClassificationCv(pairs, config, options);
  ASSERT_TRUE(reference.ok());

  options.checkpoint_dir = FreshDir("threads_ckpt");
  options.num_threads = 4;
  auto first = RunPairClassificationCv(pairs, config, options);
  ASSERT_TRUE(first.ok());
  // Re-run resumes every fold from disk and must still match exactly.
  options.num_threads = 1;
  auto resumed = RunPairClassificationCv(pairs, config, options);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(first->auc, reference->auc);
  EXPECT_EQ(resumed->auc, reference->auc);
  EXPECT_EQ(resumed->metrics.true_positives, reference->metrics.true_positives);
  std::filesystem::remove_all(options.checkpoint_dir);
}

TEST_F(PipelineResumeTest, PerFoldStatsPathCheckpointsFolds) {
  const PairCorpus pairs = MakePairs(13);
  const ClassifierConfig config = ClassifierConfig::M1();
  PipelineOptions options = BaseOptions();
  options.per_fold_stats = true;
  auto reference = RunPairClassificationCv(pairs, config, options);
  ASSERT_TRUE(reference.ok());

  options.checkpoint_dir = FreshDir("perfold_ckpt");
  failpoint::Spec kill;
  kill.mode = failpoint::Spec::Mode::kNth;
  kill.nth = 2;
  failpoint::Activate("pipeline.fold", kill);
  ASSERT_FALSE(RunPairClassificationCv(pairs, config, options).ok());
  failpoint::DeactivateAll();

  auto resumed = RunPairClassificationCv(pairs, config, options);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed->auc, reference->auc);
  EXPECT_EQ(resumed->metrics.true_positives, reference->metrics.true_positives);
  EXPECT_EQ(resumed->metrics.false_negatives, reference->metrics.false_negatives);
  std::filesystem::remove_all(options.checkpoint_dir);
}

TEST_F(PipelineResumeTest, PerFoldStatsResumeReportsFeatureCounts) {
  const PairCorpus pairs = MakePairs(17);
  const ClassifierConfig config = ClassifierConfig::M1();
  PipelineOptions options = BaseOptions();
  options.per_fold_stats = true;
  options.checkpoint_dir = FreshDir("perfold_report_ckpt");
  auto first = RunPairClassificationCv(pairs, config, options);
  ASSERT_TRUE(first.ok());
  ASSERT_GT(first->num_t_features, 0u);

  // Every fold resumes from disk on the rerun. The report must still carry
  // the feature counts: they used to be set only inside the !resumed
  // branch, so an all-resumed run reported 0 T / 0 P features.
  auto resumed = RunPairClassificationCv(pairs, config, options);
  ASSERT_TRUE(resumed.ok());
  EXPECT_GT(resumed->num_t_features, 0u);
  EXPECT_EQ(resumed->num_t_features, first->num_t_features);
  EXPECT_EQ(resumed->num_p_features, first->num_p_features);
  EXPECT_EQ(resumed->auc, first->auc);
  std::filesystem::remove_all(options.checkpoint_dir);
}

}  // namespace
}  // namespace microbrowse
