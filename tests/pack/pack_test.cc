// Copyright 2026 The Microbrowse Authors
//
// mbpack container tests: write/read round trips through PackWriter and
// PackReader, the zero-copy section views (Array<T>, StringTable), and the
// open-time validation ladder — every corruption a pack can arrive with
// (bad magic, wrong version, flipped bytes, truncation, duplicate or
// out-of-bounds sections) must be rejected before any payload byte is
// interpreted.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/hash.h"
#include "pack/format.h"
#include "pack/pack_reader.h"
#include "pack/pack_writer.h"

namespace microbrowse {
namespace pack {
namespace {

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/pack_test_" + std::to_string(::getpid()) + "_" + name;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  ASSERT_TRUE(out.good()) << path;
}

/// A small two-section pack: doubles in section 7, strings in 8/9.
std::string WriteSamplePack(const std::string& name) {
  const std::string path = TestPath(name);
  PackWriter writer;

  SectionBuilder weights;
  weights.AppendArray(std::vector<double>{0.5, -1.25, 3.0});
  writer.AddSection(7, std::move(weights).Take());

  const std::vector<std::string> keys = {"alpha", "beta", "gamma"};
  SectionBuilder offsets;
  SectionBuilder bytes;
  uint64_t cursor = 0;
  offsets.AppendPod(cursor);
  for (const std::string& key : keys) {
    bytes.AppendBytes(key);
    cursor += key.size();
    offsets.AppendPod(cursor);
  }
  writer.AddSection(8, std::move(offsets).Take());
  writer.AddSection(9, std::move(bytes).Take());

  EXPECT_TRUE(writer.Finish(path).ok());
  return path;
}

TEST(PackWriterTest, RoundTripSectionsAndViews) {
  const std::string path = WriteSamplePack("roundtrip.mbp");
  auto reader = PackReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();

  EXPECT_EQ((*reader)->sections().size(), 3u);
  EXPECT_TRUE((*reader)->HasSection(7));
  EXPECT_TRUE((*reader)->HasSection(8));
  EXPECT_FALSE((*reader)->HasSection(99));

  size_t count = 0;
  auto weights = (*reader)->Array<double>(7, &count);
  ASSERT_TRUE(weights.ok()) << weights.status().ToString();
  ASSERT_EQ(count, 3u);
  EXPECT_EQ((*weights)[0], 0.5);
  EXPECT_EQ((*weights)[1], -1.25);
  EXPECT_EQ((*weights)[2], 3.0);

  auto strings = (*reader)->Strings(8, 9);
  ASSERT_TRUE(strings.ok()) << strings.status().ToString();
  ASSERT_EQ(strings->size(), 3u);
  EXPECT_EQ(strings->at(0), "alpha");
  EXPECT_EQ(strings->at(2), "gamma");
  EXPECT_EQ(strings->Find("beta"), 1u);
  EXPECT_EQ(strings->Find("delta"), StringTable::kNotFound);
  EXPECT_EQ(strings->Find(""), StringTable::kNotFound);

  // The views are the mapping itself: payload pointers must lie inside the
  // file and be 8-byte aligned (the reinterpret_cast contract).
  EXPECT_EQ(reinterpret_cast<uintptr_t>(*weights) % kSectionAlignment, 0u);
}

TEST(PackWriterTest, MissingSectionIsAnError) {
  const std::string path = WriteSamplePack("missing.mbp");
  auto reader = PackReader::Open(path);
  ASSERT_TRUE(reader.ok());
  size_t count = 0;
  EXPECT_FALSE((*reader)->Array<double>(42, &count).ok());
  EXPECT_FALSE((*reader)->Strings(8, 99).ok());
}

TEST(PackWriterTest, WriterRefusesDuplicateSectionTypes) {
  const std::string path = TestPath("dup.mbp");
  PackWriter writer;
  SectionBuilder a;
  a.AppendPod<uint64_t>(1);
  writer.AddSection(5, std::move(a).Take());
  SectionBuilder b;
  b.AppendPod<uint64_t>(2);
  writer.AddSection(5, std::move(b).Take());
  const Status written = writer.Finish(path);
  ASSERT_FALSE(written.ok());
  EXPECT_NE(written.ToString().find("duplicate"), std::string::npos) << written.ToString();
}

TEST(PackReaderTest, RejectsDuplicateSectionTypes) {
  // The writer refuses duplicates, so forge one: retype the second table
  // entry to collide with the first and re-sign the footer, leaving the
  // file otherwise checksum-valid.
  const std::string good = WriteSamplePack("dup_forged_src.mbp");
  std::string bytes = ReadAll(good);
  SectionEntry entry;
  const size_t second_entry = sizeof(PackHeader) + sizeof(SectionEntry);
  std::memcpy(&entry, bytes.data() + second_entry, sizeof(entry));
  entry.type = 7;  // Collides with the first section.
  std::memcpy(bytes.data() + second_entry, &entry, sizeof(entry));
  PackFooter footer;
  std::memcpy(&footer, bytes.data() + bytes.size() - sizeof(footer), sizeof(footer));
  footer.file_checksum = Fnv1a64Wide(
      std::string_view(bytes.data(), bytes.size() - sizeof(footer)));
  std::memcpy(bytes.data() + bytes.size() - sizeof(footer), &footer, sizeof(footer));
  const std::string path = TestPath("dup_forged.mbp");
  WriteAll(path, bytes);

  auto reader = PackReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().ToString().find("duplicate"), std::string::npos)
      << reader.status().ToString();
}

TEST(PackReaderTest, RejectsEmptyAndTinyFiles) {
  const std::string path = TestPath("tiny.mbp");
  WriteAll(path, "");
  EXPECT_FALSE(PackReader::Open(path).ok());
  WriteAll(path, std::string(kMinFileSize - 1, '\0'));
  EXPECT_FALSE(PackReader::Open(path).ok());
  EXPECT_FALSE(PackReader::Open(TestPath("does_not_exist.mbp")).ok());
}

TEST(PackReaderTest, RejectsBadMagic) {
  const std::string good = WriteSamplePack("badmagic_src.mbp");
  std::string bytes = ReadAll(good);
  bytes[0] = 'X';
  const std::string path = TestPath("badmagic.mbp");
  WriteAll(path, bytes);
  auto reader = PackReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().ToString().find("magic"), std::string::npos);
}

TEST(PackReaderTest, RejectsUnsupportedVersion) {
  const std::string good = WriteSamplePack("badver_src.mbp");
  std::string bytes = ReadAll(good);
  // Bump the version field and re-sign the header so only the version is
  // wrong — the reader must still refuse it.
  PackHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  header.version = kFormatVersion + 1;
  header.header_checksum = Fnv1a64(std::string_view(
      reinterpret_cast<const char*>(&header), offsetof(PackHeader, header_checksum)));
  std::memcpy(bytes.data(), &header, sizeof(header));
  const std::string path = TestPath("badver.mbp");
  WriteAll(path, bytes);
  auto reader = PackReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().ToString().find("version"), std::string::npos);
}

TEST(PackReaderTest, RejectsEveryPossibleBitFlip) {
  // Exhaustive single-byte corruption: every byte of the file is covered by
  // some checksum (header, per-section or whole-file) or magic/bounds check,
  // so each flip must fail the open. The sample pack is ~200 bytes, so
  // exhaustive is cheap.
  const std::string good = WriteSamplePack("flip_src.mbp");
  const std::string bytes = ReadAll(good);
  const std::string path = TestPath("flip.mbp");
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string damaged = bytes;
    damaged[i] ^= 0x5a;
    WriteAll(path, damaged);
    EXPECT_FALSE(PackReader::Open(path).ok()) << "byte " << i << " of " << bytes.size();
  }
  // Control: the undamaged bytes still open.
  WriteAll(path, bytes);
  EXPECT_TRUE(PackReader::Open(path).ok());
}

TEST(PackReaderTest, ChecksumAndSizeAreStable) {
  const std::string path = WriteSamplePack("stable.mbp");
  auto first = PackReader::Open(path);
  auto second = PackReader::Open(path);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*first)->file_checksum(), (*second)->file_checksum());
  EXPECT_EQ((*first)->file_size(), ReadAll(path).size());
}

TEST(StringTableTest, BinarySearchAgreesWithLinearScan) {
  const std::string path = TestPath("table.mbp");
  PackWriter writer;
  std::vector<std::string> keys;
  for (int i = 0; i < 200; ++i) keys.push_back("k" + std::to_string(1000 + i * 3));
  SectionBuilder offsets;
  SectionBuilder bytes;
  uint64_t cursor = 0;
  offsets.AppendPod(cursor);
  for (const std::string& key : keys) {
    bytes.AppendBytes(key);
    cursor += key.size();
    offsets.AppendPod(cursor);
  }
  writer.AddSection(1, std::move(offsets).Take());
  writer.AddSection(2, std::move(bytes).Take());
  ASSERT_TRUE(writer.Finish(path).ok());

  auto reader = PackReader::Open(path);
  ASSERT_TRUE(reader.ok());
  auto table = (*reader)->Strings(1, 2);
  ASSERT_TRUE(table.ok());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(table->Find(keys[i]), i) << keys[i];
  }
  EXPECT_EQ(table->Find("k0999"), StringTable::kNotFound);
  EXPECT_EQ(table->Find("k9999"), StringTable::kNotFound);
  EXPECT_EQ(table->Find("k1000x"), StringTable::kNotFound);
}

TEST(HashTest, WideFnvDistinguishesTailLengths) {
  // The wide FNV pads the final partial word with zeros; the folded-in byte
  // count is what keeps "abc" and "abc\0" (same padded word) distinct.
  EXPECT_NE(Fnv1a64Wide("abc"), Fnv1a64Wide(std::string_view("abc\0", 4)));
  EXPECT_NE(Fnv1a64Wide(""), Fnv1a64Wide(std::string_view("\0", 1)));
  EXPECT_NE(Fnv1a64Wide("12345678"), Fnv1a64Wide("12345679"));
  EXPECT_EQ(Fnv1a64Wide("12345678"), Fnv1a64Wide("12345678"));
}

}  // namespace
}  // namespace pack
}  // namespace microbrowse
