// Copyright 2026 The Microbrowse Authors
//
// Serving-resilience tests: request deadlines dropping queued work before
// scoring, the graceful-drain state machine with its healthz/readyz
// surface, idle (slow-loris) eviction with fd reclaim, the per-connection
// in-flight cap, and the retrying client. Scoring latency is injected
// with the serve.score delay failpoint where a slow worker is needed, so
// the suite runs under `ctest -L faultinject`.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/socket.h"
#include "corpus/generator.h"
#include "corpus/pair_extraction.h"
#include "io/atomic_file.h"
#include "io/serialization.h"
#include "microbrowse/classifier.h"
#include "microbrowse/stats_db.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace microbrowse {
namespace serve {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

/// One raw client connection speaking the line protocol synchronously.
class TestClient {
 public:
  static std::unique_ptr<TestClient> ConnectTo(uint16_t port) {
    auto socket = TcpConnect("127.0.0.1", port);
    EXPECT_TRUE(socket.ok()) << socket.status().ToString();
    if (!socket.ok()) return nullptr;
    auto client = std::make_unique<TestClient>();
    client->socket_ = std::make_unique<Socket>(std::move(*socket));
    client->reader_ = std::make_unique<LineReader>(*client->socket_);
    return client;
  }

  Status Send(const std::string& line) { return SendAll(*socket_, line + "\n"); }
  Status SendRaw(const std::string& bytes) { return SendAll(*socket_, bytes); }
  void Close() {
    reader_.reset();
    socket_.reset();
  }

  Result<bool> TryReadLine(std::string* line) { return reader_->ReadLine(line); }

  Request ReadResponse() {
    std::string line;
    auto got = reader_->ReadLine(&line);
    EXPECT_TRUE(got.ok() && *got) << "connection closed early";
    auto response = ParseRequest(line);
    EXPECT_TRUE(response.ok()) << line;
    return response.ok() ? *response : Request{};
  }

 private:
  std::unique_ptr<Socket> socket_;
  std::unique_ptr<LineReader> reader_;
};

class ResilienceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const std::string dir =
        ::testing::TempDir() + "/serve_resilience_test_" + std::to_string(::getpid());
    ASSERT_TRUE(CreateDirectories(dir).ok());
    AdCorpusOptions corpus_options;
    corpus_options.num_adgroups = 40;
    corpus_options.seed = 31;
    auto generated = GenerateAdCorpus(corpus_options);
    ASSERT_TRUE(generated.ok());
    const PairCorpus pairs = ExtractSignificantPairs(generated->corpus, {});
    const FeatureStatsDb db = BuildFeatureStats(pairs, {});
    const ClassifierConfig config = ClassifierConfig::M6();
    const CoupledDataset dataset = BuildClassifierDataset(pairs, db, config, 31);
    auto model = TrainSnippetClassifier(dataset, config);
    ASSERT_TRUE(model.ok());
    paths_ = new BundlePaths;
    paths_->model_path = dir + "/model.txt";
    paths_->stats_path = dir + "/stats.tsv";
    ASSERT_TRUE(SaveClassifier(*model, dataset.t_registry, dataset.p_registry,
                               paths_->model_path)
                    .ok());
    ASSERT_TRUE(SaveFeatureStats(db, paths_->stats_path).ok());
  }

  static void TearDownTestSuite() { delete paths_; }

  void SetUp() override {
    failpoint::DeactivateAll();
    ASSERT_TRUE(registry_.LoadInitial(*paths_).ok());
  }
  void TearDown() override { failpoint::DeactivateAll(); }

  /// Arms the serve.score failpoint to inject `ms` of latency into every
  /// cache-missing scoring request.
  static void SlowScoringBy(int64_t ms) {
    failpoint::Spec spec;
    spec.mode = failpoint::Spec::Mode::kDelay;
    spec.delay_ms = ms;
    failpoint::Activate("serve.score", spec);
  }

  static std::string ScoreLine(const std::string& id, const std::string& salt,
                               int64_t deadline_ms = 0) {
    JsonWriter request;
    request.String("type", "score_pair")
        .String("id", id)
        .String("a", "cheap flights now|" + salt)
        .String("b", "late deals|" + salt);
    if (deadline_ms > 0) request.Int("deadline_ms", deadline_ms);
    return request.Finish();
  }

  static BundlePaths* paths_;
  BundleRegistry registry_;
};

BundlePaths* ResilienceTest::paths_ = nullptr;

// --- Request deadlines

TEST_F(ResilienceTest, ExpiredDeadlineIsRefusedBeforeScoring) {
  ScoringService service(&registry_);
  ServerOptions options;
  options.port = 0;
  options.num_threads = 1;  // One worker: the slow request stalls the queue.
  Server server(&service, options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  SlowScoringBy(250);
  auto client = TestClient::ConnectTo(*port);
  ASSERT_NE(client, nullptr);
  // "slow" scores for ~250 ms; "doomed" carries a 50 ms budget and dies in
  // the queue behind it; "patient" has no deadline and must still score.
  ASSERT_TRUE(client->SendRaw(ScoreLine("slow", "s1") + "\n" +
                              ScoreLine("doomed", "s2", /*deadline_ms=*/50) + "\n" +
                              ScoreLine("patient", "s3") + "\n")
                  .ok());
  std::map<std::string, Request> by_id;
  for (int i = 0; i < 3; ++i) {
    const Request response = client->ReadResponse();
    by_id[std::string(response.Get("id"))] = response;
  }
  ASSERT_EQ(by_id.size(), 3u);
  EXPECT_EQ(by_id["slow"].Get("ok"), "true");
  EXPECT_EQ(by_id["patient"].Get("ok"), "true");
  EXPECT_EQ(by_id["doomed"].Get("ok"), "false");
  EXPECT_EQ(by_id["doomed"].Get("error"), "deadline_exceeded");
  EXPECT_TRUE(by_id["doomed"].Get("margin").empty()) << "refused request was scored";
  EXPECT_EQ(service.metrics().deadline_exceeded->Value(), 1);
  server.Stop();
}

TEST_F(ResilienceTest, DefaultDeadlineAppliesToRequestsWithoutOne) {
  ScoringService service(&registry_);
  ServerOptions options;
  options.port = 0;
  options.num_threads = 1;
  options.default_deadline_ms = 150;  // Every bare request gets this budget.
  Server server(&service, options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  SlowScoringBy(400);
  auto client = TestClient::ConnectTo(*port);
  ASSERT_NE(client, nullptr);
  // Both inherit the 60 ms default; the first starts scoring in time (the
  // deadline bounds queue wait, not execution), the second expires behind
  // it. A generous per-request deadline overrides the tight default.
  ASSERT_TRUE(client->SendRaw(ScoreLine("first", "d1") + "\n" +
                              ScoreLine("behind", "d2") + "\n" +
                              ScoreLine("roomy", "d3", /*deadline_ms=*/10'000) + "\n")
                  .ok());
  std::map<std::string, Request> by_id;
  for (int i = 0; i < 3; ++i) {
    const Request response = client->ReadResponse();
    by_id[std::string(response.Get("id"))] = response;
  }
  EXPECT_EQ(by_id["first"].Get("ok"), "true");
  EXPECT_EQ(by_id["behind"].Get("error"), "deadline_exceeded");
  EXPECT_EQ(by_id["roomy"].Get("ok"), "true");
  server.Stop();
}

// --- Health surface

TEST_F(ResilienceTest, HealthzAndReadyzReportServingWithABundle) {
  ScoringService service(&registry_);
  auto healthz = ParseRequest(service.HandleLine(R"({"type":"healthz"})"));
  ASSERT_TRUE(healthz.ok());
  EXPECT_EQ(healthz->Get("ok"), "true");
  EXPECT_EQ(healthz->Get("state"), "serving");
  EXPECT_EQ(healthz->Get("gen"), "1");

  auto readyz = ParseRequest(service.HandleLine(R"({"type":"readyz"})"));
  ASSERT_TRUE(readyz.ok());
  EXPECT_EQ(readyz->Get("ok"), "true");
  EXPECT_EQ(readyz->Get("state"), "serving");
}

TEST_F(ResilienceTest, ReadyzIsDegradedWithoutABundle) {
  BundleRegistry empty;  // Never loaded: generation 0.
  ScoringService service(&empty);
  auto healthz = ParseRequest(service.HandleLine(R"({"type":"healthz"})"));
  ASSERT_TRUE(healthz.ok());
  // healthz is liveness: the process is up even with nothing loaded.
  EXPECT_EQ(healthz->Get("ok"), "true");
  EXPECT_EQ(healthz->Get("state"), "degraded");

  auto readyz = ParseRequest(service.HandleLine(R"({"type":"readyz"})"));
  ASSERT_TRUE(readyz.ok());
  // readyz is readiness: no bundle means no traffic should arrive.
  EXPECT_EQ(readyz->Get("ok"), "false");
  EXPECT_EQ(readyz->Get("state"), "degraded");
}

TEST_F(ResilienceTest, HttpHealthEndpointsAnswer) {
  ScoringService service(&registry_);
  ServerOptions options;
  options.port = 0;
  Server server(&service, options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  for (const char* path : {"/healthz", "/readyz"}) {
    auto client = TestClient::ConnectTo(*port);
    ASSERT_NE(client, nullptr);
    ASSERT_TRUE(
        client->SendRaw(std::string("GET ") + path + " HTTP/1.0\r\n\r\n").ok());
    std::string all;
    std::string line;
    for (;;) {
      auto got = client->TryReadLine(&line);
      if (!got.ok() || !*got) break;
      all += line + "\n";
    }
    EXPECT_NE(all.find("200 OK"), std::string::npos) << path << ": " << all;
    EXPECT_NE(all.find("\"state\":\"serving\""), std::string::npos) << all;
  }
  server.Stop();
}

// --- Graceful drain

TEST_F(ResilienceTest, DrainFinishesInflightAndRefusesNewWork) {
  ScoringService service(&registry_);
  ServerOptions options;
  options.port = 0;
  options.num_threads = 1;
  options.drain_deadline_ms = 10'000;
  options.drain_retry_after_ms = 321;
  Server server(&service, options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  SlowScoringBy(400);
  auto client = TestClient::ConnectTo(*port);
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Send(ScoreLine("inflight", "g1")).ok());
  // Let the request reach the worker before draining starts.
  std::this_thread::sleep_for(milliseconds(100));

  std::thread drainer([&] {
    const Status status = server.Drain();
    EXPECT_TRUE(status.ok()) << status.ToString();
  });
  // Wait for the drain to take effect, then probe it from the still-open
  // connection: observability stays up, scoring is refused with the
  // configured retry hint.
  for (int i = 0; i < 100 && !server.draining(); ++i) {
    std::this_thread::sleep_for(milliseconds(5));
  }
  ASSERT_TRUE(server.draining());
  ASSERT_TRUE(client->Send(ScoreLine("late", "g2")).ok());
  ASSERT_TRUE(client->Send(R"({"type":"readyz","id":"rz"})").ok());

  std::map<std::string, Request> by_id;
  for (int i = 0; i < 3; ++i) {
    const Request response = client->ReadResponse();
    by_id[std::string(response.Get("id"))] = response;
  }
  drainer.join();

  // The in-flight request finished and was delivered mid-drain.
  EXPECT_EQ(by_id["inflight"].Get("ok"), "true");
  EXPECT_EQ(by_id["late"].Get("ok"), "false");
  EXPECT_EQ(by_id["late"].Get("error"), "draining");
  EXPECT_EQ(by_id["late"].Get("retry_after_ms"), "321");
  EXPECT_EQ(by_id["rz"].Get("ok"), "false");
  EXPECT_EQ(by_id["rz"].Get("state"), "draining");
  EXPECT_EQ(by_id["rz"].Get("retry_after_ms"), "321");
  EXPECT_GE(service.metrics().drained->Value(), 1);
  // healthz keeps reporting draining after the stop (liveness, not reset).
  auto healthz = ParseRequest(service.HandleLine(R"({"type":"healthz"})"));
  ASSERT_TRUE(healthz.ok());
  EXPECT_EQ(healthz->Get("state"), "draining");
}

TEST_F(ResilienceTest, DrainDeadlineAbandonsStuckWork) {
  ScoringService service(&registry_);
  ServerOptions options;
  options.port = 0;
  options.num_threads = 1;
  options.drain_deadline_ms = 100;
  Server server(&service, options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  SlowScoringBy(2000);  // Far beyond the drain deadline.
  auto client = TestClient::ConnectTo(*port);
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Send(ScoreLine("stuck", "a1")).ok());
  std::this_thread::sleep_for(milliseconds(100));

  const Status status = server.Drain();
  // The drain wait gave up at its 100 ms deadline and reported the stuck
  // request as abandoned. (The hard stop still joins the worker thread —
  // cancellation is cooperative — so total elapsed time is bounded by the
  // stuck request, which is exactly what the report says.)
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded) << status.ToString();
  EXPECT_NE(status.message().find("abandoned"), std::string::npos) << status.ToString();
  EXPECT_EQ(server.Drain().code(), StatusCode::kFailedPrecondition);  // Once only.
}

// --- Idle eviction (slow loris)

TEST_F(ResilienceTest, SilentConnectionIsEvictedAndFdReclaimed) {
  ScoringService service(&registry_);
  ServerOptions options;
  options.port = 0;
  options.idle_timeout_ms = 200;
  Server server(&service, options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  auto client = TestClient::ConnectTo(*port);  // Connects, then goes silent.
  ASSERT_NE(client, nullptr);
  for (int i = 0; i < 500 && server.active_connections() == 0; ++i) {
    std::this_thread::sleep_for(milliseconds(10));
  }
  ASSERT_EQ(server.active_connections(), 1u);

  // The reaper must evict the silent peer and reclaim its connection slot
  // (and fd) while the server keeps running — the idle analogue of the
  // disconnect-reap test in server_test.cc.
  for (int i = 0; i < 500 && server.active_connections() > 0; ++i) {
    std::this_thread::sleep_for(milliseconds(10));
  }
  EXPECT_EQ(server.active_connections(), 0u);
  EXPECT_EQ(service.metrics().idle_evicted->Value(), 1);
  std::string line;
  const auto got = client->TryReadLine(&line);
  EXPECT_TRUE(!got.ok() || !*got) << "evicted client still readable";

  // The server still serves fresh, non-idle connections.
  auto next = TestClient::ConnectTo(*port);
  ASSERT_NE(next, nullptr);
  ASSERT_TRUE(next->Send(R"({"type":"ping","id":"n"})").ok());
  EXPECT_EQ(next->ReadResponse().Get("id"), "n");
  server.Stop();
}

TEST_F(ResilienceTest, TricklingClientBelowIdleThresholdStaysConnected) {
  ScoringService service(&registry_);
  ServerOptions options;
  options.port = 0;
  options.idle_timeout_ms = 400;
  Server server(&service, options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  auto client = TestClient::ConnectTo(*port);
  ASSERT_NE(client, nullptr);
  // Dribble a ping one byte at a time for well over the idle timeout in
  // total, with every gap under it. Bytes are moving, so the trickler is
  // slow, not idle — it must not be evicted mid-request.
  const std::string request = "{\"type\":\"ping\",\"id\":\"t\"}\n";
  for (char byte : request) {
    ASSERT_TRUE(client->SendRaw(std::string(1, byte)).ok());
    std::this_thread::sleep_for(milliseconds(50));
  }
  const Request response = client->ReadResponse();
  EXPECT_EQ(response.Get("ok"), "true");
  EXPECT_EQ(response.Get("id"), "t");
  EXPECT_EQ(service.metrics().idle_evicted->Value(), 0);
  EXPECT_EQ(server.active_connections(), 1u);
  server.Stop();
}

// --- Per-connection in-flight cap

TEST_F(ResilienceTest, PerConnectionInflightCapShedsPipelinedExcess) {
  ScoringService service(&registry_);
  ServerOptions options;
  options.port = 0;
  options.num_threads = 1;
  options.max_queue = 1024;  // Global queue roomy: only the cap can shed.
  options.max_inflight_per_connection = 2;
  Server server(&service, options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  SlowScoringBy(300);
  auto client = TestClient::ConnectTo(*port);
  ASSERT_NE(client, nullptr);
  std::string burst;
  constexpr int kRequests = 8;
  for (int i = 0; i < kRequests; ++i) {
    burst += ScoreLine("c" + std::to_string(i), "cap" + std::to_string(i)) + "\n";
  }
  ASSERT_TRUE(client->SendRaw(burst).ok());
  int ok_count = 0;
  int overloaded = 0;
  for (int i = 0; i < kRequests; ++i) {
    const Request response = client->ReadResponse();
    if (response.Get("ok") == "true") {
      ++ok_count;
    } else {
      EXPECT_EQ(response.Get("error"), "overloaded");
      ++overloaded;
    }
  }
  // With the worker pinned at ~300 ms per request, at most two of the
  // burst can be in flight when the reader hits the later lines.
  EXPECT_GE(ok_count, 2);
  EXPECT_GE(overloaded, 1);
  EXPECT_GE(service.metrics().rejected_overload->Value(), overloaded);
  server.Stop();
}

// --- Resilient client

TEST_F(ResilienceTest, ClientReconnectsAcrossServerRestart) {
  ScoringService service(&registry_);
  ServerOptions options;
  options.port = 0;
  auto server = std::make_unique<Server>(&service, options);
  auto port = server->Start();
  ASSERT_TRUE(port.ok());

  ClientOptions client_options;
  client_options.port = *port;
  client_options.retry.max_attempts = 8;
  client_options.retry.initial_backoff_ms = 20;
  Rng rng(5);
  client_options.retry.rng = &rng;
  ResilientClient client(client_options);
  EXPECT_TRUE(client.Ping().ok());

  // Hard-stop and restart on the same port: the client's next call rides
  // its retry loop across the dead connection instead of surfacing an
  // error.
  server.reset();
  ScoringService service2(&registry_);
  ServerOptions restart = options;
  restart.port = *port;
  Server server2(&service2, restart);
  auto port2 = server2.Start();
  ASSERT_TRUE(port2.ok()) << port2.status().ToString();
  ASSERT_EQ(*port2, *port);

  EXPECT_TRUE(client.Ping().ok());
  EXPECT_GE(client.stats().reconnects, 1);
  server2.Stop();
}

TEST_F(ResilienceTest, ClientSurfacesDrainingAsUnavailableWithoutRetryBudget) {
  ScoringService service(&registry_);
  ServerOptions options;
  options.port = 0;
  options.num_threads = 1;
  options.drain_deadline_ms = 10'000;
  Server server(&service, options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  SlowScoringBy(600);
  ClientOptions client_options;
  client_options.port = *port;
  client_options.retry.max_attempts = 1;  // No retries: observe the refusal.
  ResilientClient client(client_options);
  EXPECT_TRUE(client.Ping().ok());  // Connect before the listener closes.

  auto occupier = TestClient::ConnectTo(*port);
  ASSERT_NE(occupier, nullptr);
  ASSERT_TRUE(occupier->Send(ScoreLine("busy", "z1")).ok());
  std::this_thread::sleep_for(milliseconds(100));
  std::thread drainer([&] { (void)server.Drain(); });
  for (int i = 0; i < 100 && !server.draining(); ++i) {
    std::this_thread::sleep_for(milliseconds(5));
  }
  auto refused = client.Call(ScoreLine("probe", "z2"));
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable)
      << refused.status().ToString();
  drainer.join();
}

TEST_F(ResilienceTest, ClientAttachesDeadlineAndSurfacesExpiry) {
  ScoringService service(&registry_);
  ServerOptions options;
  options.port = 0;
  options.num_threads = 1;
  Server server(&service, options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  SlowScoringBy(400);
  // Occupy the lone worker so the client's request waits in queue past its
  // spliced-in 50 ms deadline.
  auto occupier = TestClient::ConnectTo(*port);
  ASSERT_NE(occupier, nullptr);
  ASSERT_TRUE(occupier->Send(ScoreLine("busy", "w1")).ok());
  std::this_thread::sleep_for(milliseconds(100));

  ClientOptions client_options;
  client_options.port = *port;
  client_options.deadline_ms = 50;
  client_options.retry.max_attempts = 1;
  ResilientClient client(client_options);
  auto result = client.Call(ScoreLine("hopeful", "w2"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status().ToString();
  server.Stop();
}

}  // namespace
}  // namespace serve
}  // namespace microbrowse
