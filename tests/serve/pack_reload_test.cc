// Copyright 2026 The Microbrowse Authors
//
// Hot-reload guarantees for mbpack-backed bundles: a server whose artifacts
// are packs must (a) score identically to the TSV-backed bundle, (b) keep
// the prior generation serving when a replacement pack arrives truncated or
// bit-flipped — the checksummed open rejects it before any byte is
// interpreted — and (c) short-circuit SIGHUP reloads when the on-disk
// bytes are unchanged, bumping skipped_reload_count instead of the
// generation.

#include <gtest/gtest.h>

#include <unistd.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "corpus/generator.h"
#include "corpus/pair_extraction.h"
#include "io/atomic_file.h"
#include "io/pack_artifacts.h"
#include "io/serialization.h"
#include "microbrowse/classifier.h"
#include "serve/bundle.h"
#include "serve/service.h"
#include "serve/protocol.h"

namespace microbrowse {
namespace serve {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

/// Stages bytes the way production pushes do — atomic rename onto the
/// path. The serving generation's mmap stays on the old inode, so damage
/// staged here can never leak into already-loaded bundles.
void WriteAll(const std::string& path, const std::string& bytes) {
  ASSERT_TRUE(WriteFileAtomic(path, bytes).ok()) << path;
}

std::string SnippetField(const Snippet& snippet) {
  std::string field;
  for (int i = 0; i < snippet.num_lines(); ++i) {
    if (i > 0) field += '|';
    for (size_t t = 0; t < snippet.line(i).size(); ++t) {
      if (t > 0) field += ' ';
      field += snippet.line(i)[t];
    }
  }
  return field;
}

/// Trains one small bundle and stages it in BOTH formats; each test copies
/// the packs it intends to damage into its own directory.
class PackReloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    failpoint::DeactivateAll();
    dir_ = new std::string(::testing::TempDir() + "/pack_reload_test_" +
                           std::to_string(::getpid()));
    ASSERT_TRUE(CreateDirectories(*dir_).ok());

    AdCorpusOptions corpus_options;
    corpus_options.num_adgroups = 60;
    corpus_options.seed = 23;
    auto generated = GenerateAdCorpus(corpus_options);
    ASSERT_TRUE(generated.ok());
    const PairCorpus pairs = ExtractSignificantPairs(generated->corpus, {});
    const FeatureStatsDb db = BuildFeatureStats(pairs, {});
    const ClassifierConfig config = ClassifierConfig::M6();
    const CoupledDataset dataset = BuildClassifierDataset(pairs, db, config, 23);
    auto model = TrainSnippetClassifier(dataset, config);
    ASSERT_TRUE(model.ok());

    ASSERT_TRUE(SaveClassifier(*model, dataset.t_registry, dataset.p_registry,
                               *dir_ + "/model.txt")
                    .ok());
    ASSERT_TRUE(SaveFeatureStats(db, *dir_ + "/stats.tsv").ok());
    // Packs mirror the TSV artifacts (the mbctl pack flow): converting from
    // the reloaded TSV keeps the two bundles bitwise-identical, so the
    // parity test below can compare formatted margins exactly.
    auto tsv_model = LoadClassifier(*dir_ + "/model.txt");
    auto tsv_db = LoadFeatureStats(*dir_ + "/stats.tsv");
    ASSERT_TRUE(tsv_model.ok());
    ASSERT_TRUE(tsv_db.ok());
    ASSERT_TRUE(SaveClassifierPack(tsv_model->model, tsv_model->t_registry,
                                   tsv_model->p_registry, *dir_ + "/model.mbp")
                    .ok());
    ASSERT_TRUE(SaveStatsPack(*tsv_db, *dir_ + "/stats.mbp").ok());

    fields_ = new std::vector<std::string>;
    for (const auto& adgroup : generated->corpus.adgroups) {
      for (const auto& creative : adgroup.creatives) {
        fields_->push_back(SnippetField(creative.snippet));
      }
    }
    ASSERT_GE(fields_->size(), 4u);
  }

  static void TearDownTestSuite() {
    delete fields_;
    delete dir_;
  }

  void SetUp() override { failpoint::DeactivateAll(); }
  void TearDown() override { failpoint::DeactivateAll(); }

  /// Pack-backed BundlePaths staged under a test-private directory.
  BundlePaths StagePackBundle(const std::string& subdir) {
    const std::string dir = *dir_ + "/" + subdir;
    EXPECT_TRUE(CreateDirectories(dir).ok());
    WriteAll(dir + "/model.mbp", ReadAll(*dir_ + "/model.mbp"));
    WriteAll(dir + "/stats.mbp", ReadAll(*dir_ + "/stats.mbp"));
    BundlePaths paths;
    paths.model_path = dir + "/model.mbp";
    paths.stats_path = dir + "/stats.mbp";
    paths.model_type = "M6";
    return paths;
  }

  static Request HandleOk(ScoringService& service, const std::string& line) {
    auto response = ParseRequest(service.HandleLine(line));
    EXPECT_TRUE(response.ok());
    EXPECT_EQ(response->Get("ok"), "true") << response->Get("error");
    return *response;
  }

  static std::string ScorePairLine(const std::string& a, const std::string& b) {
    JsonWriter request;
    request.String("type", "score_pair").String("a", a).String("b", b);
    return request.Finish();
  }

  static const std::string* dir_;
  static std::vector<std::string>* fields_;
};

const std::string* PackReloadTest::dir_ = nullptr;
std::vector<std::string>* PackReloadTest::fields_ = nullptr;

TEST_F(PackReloadTest, PackBundleScoresIdenticallyToTsvBundle) {
  BundlePaths tsv_paths;
  tsv_paths.model_path = *dir_ + "/model.txt";
  tsv_paths.stats_path = *dir_ + "/stats.tsv";
  tsv_paths.model_type = "M6";
  const BundlePaths pack_paths = StagePackBundle("parity");

  BundleRegistry tsv_registry;
  BundleRegistry pack_registry;
  ASSERT_TRUE(tsv_registry.LoadInitial(tsv_paths).ok());
  ASSERT_TRUE(pack_registry.LoadInitial(pack_paths).ok());
  ScoringService tsv_service(&tsv_registry);
  ScoringService pack_service(&pack_registry);

  for (size_t i = 0; i + 1 < fields_->size() && i < 20; i += 2) {
    const std::string line = ScorePairLine((*fields_)[i], (*fields_)[i + 1]);
    const Request via_tsv = HandleOk(tsv_service, line);
    const Request via_pack = HandleOk(pack_service, line);
    // String-identical margins: same doubles formatted by the same printf.
    EXPECT_EQ(via_pack.Get("margin"), via_tsv.Get("margin")) << line;
  }
}

TEST_F(PackReloadTest, BitFlippedPackKeepsOldGenerationServing) {
  const BundlePaths paths = StagePackBundle("bitflip");
  BundleRegistry registry;
  ASSERT_TRUE(registry.LoadInitial(paths).ok());
  ScoringService service(&registry);
  const std::string line = ScorePairLine((*fields_)[0], (*fields_)[1]);
  const Request before = HandleOk(service, line);

  // A corrupt model push: flip one byte mid-file. The open-time checksum
  // must reject it and generation 1 keeps serving, mmap intact.
  std::string damaged = ReadAll(paths.model_path);
  damaged[damaged.size() / 2] ^= 0x20;
  WriteAll(paths.model_path, damaged);

  auto reload = ParseRequest(service.HandleLine(R"({"type":"reload"})"));
  ASSERT_TRUE(reload.ok());
  EXPECT_EQ(reload->Get("ok"), "false");
  EXPECT_NE(reload->Get("error").find("checksum"), std::string::npos)
      << reload->Get("error");
  EXPECT_EQ(registry.generation(), 1u);
  EXPECT_EQ(registry.failed_reload_count(), 1);

  const Request after = HandleOk(service, line);
  EXPECT_EQ(after.Get("gen"), "1");
  EXPECT_EQ(after.Get("margin"), before.Get("margin"));
}

TEST_F(PackReloadTest, TruncatedPackKeepsOldGenerationServing) {
  const BundlePaths paths = StagePackBundle("truncate");
  BundleRegistry registry;
  ASSERT_TRUE(registry.LoadInitial(paths).ok());
  ScoringService service(&registry);
  const std::string line = ScorePairLine((*fields_)[2], (*fields_)[3]);
  const Request before = HandleOk(service, line);

  // A half-copied stats push (e.g. a crashed rsync): cut the file short.
  const std::string full = ReadAll(paths.stats_path);
  WriteAll(paths.stats_path, full.substr(0, full.size() / 3));

  auto reload = ParseRequest(service.HandleLine(R"({"type":"reload"})"));
  ASSERT_TRUE(reload.ok());
  EXPECT_EQ(reload->Get("ok"), "false");
  EXPECT_EQ(registry.generation(), 1u);

  const Request after = HandleOk(service, line);
  EXPECT_EQ(after.Get("gen"), "1");
  EXPECT_EQ(after.Get("margin"), before.Get("margin"));

  // Restoring the intact bytes makes reload succeed again (full recovery,
  // no sticky failure state).
  WriteAll(paths.stats_path, full);
  auto recovered = ParseRequest(service.HandleLine(R"({"type":"reload"})"));
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->Get("ok"), "true");
}

TEST_F(PackReloadTest, ByteIdenticalReloadIsSkipped) {
  const BundlePaths paths = StagePackBundle("skip");
  BundleRegistry registry;
  ASSERT_TRUE(registry.LoadInitial(paths).ok());
  ASSERT_EQ(registry.generation(), 1u);

  // Nothing changed on disk: the reload is acknowledged but skipped — no
  // generation bump, no load, the skip counter moves instead.
  ASSERT_TRUE(registry.Reload().ok());
  EXPECT_EQ(registry.generation(), 1u);
  EXPECT_EQ(registry.reload_count(), 0);
  EXPECT_EQ(registry.skipped_reload_count(), 1);
  ASSERT_TRUE(registry.Reload().ok());
  EXPECT_EQ(registry.skipped_reload_count(), 2);

  // force bypasses the fingerprint: a full reload runs on identical bytes.
  ASSERT_TRUE(registry.Reload(/*force=*/true).ok());
  EXPECT_EQ(registry.generation(), 2u);
  EXPECT_EQ(registry.reload_count(), 1);
  EXPECT_EQ(registry.skipped_reload_count(), 2);

  // Replacing the pack with the TSV *content* at the same path changes the
  // bytes: the sniff routes to the TSV parser and a real reload runs.
  WriteAll(paths.model_path, ReadAll(*dir_ + "/model.txt"));
  ASSERT_TRUE(registry.Reload().ok());
  EXPECT_EQ(registry.generation(), 3u);
  EXPECT_EQ(registry.reload_count(), 2);
  EXPECT_EQ(registry.skipped_reload_count(), 2);
}

TEST_F(PackReloadTest, ServiceReportsSkippedReloads) {
  const BundlePaths paths = StagePackBundle("skip_service");
  BundleRegistry registry;
  ASSERT_TRUE(registry.LoadInitial(paths).ok());
  ScoringService service(&registry);

  auto reload = ParseRequest(service.HandleLine(R"({"type":"reload"})"));
  ASSERT_TRUE(reload.ok());
  EXPECT_EQ(reload->Get("ok"), "true");
  EXPECT_EQ(reload->Get("skipped"), "true");
  EXPECT_EQ(reload->Get("gen"), "1");

  // statsz nests per-endpoint objects the line parser does not model, so
  // assert on the raw text (same idiom as service_test).
  const std::string statsz = service.HandleLine(R"({"type":"statsz"})");
  EXPECT_NE(statsz.find("\"skipped_reloads\":1"), std::string::npos) << statsz;
}

}  // namespace
}  // namespace serve
}  // namespace microbrowse
