// Copyright 2026 The Microbrowse Authors
//
// Serving-infrastructure container tests: the sharded LRU result cache and
// the lock-free latency histogram behind /statsz quantiles.

#include "serve/lru_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/histogram.h"

namespace microbrowse {
namespace serve {
namespace {

// Keys whose high 16 bits are zero all land in shard 0, making LRU order
// across them exact and deterministic regardless of the shard count.
constexpr uint64_t SameShardKey(uint64_t n) { return n; }

TEST(ShardedLruCacheTest, GetMissThenHit) {
  ShardedLruCache<double> cache(/*capacity=*/8, /*num_shards=*/1);
  EXPECT_FALSE(cache.Get(1).has_value());
  cache.Put(1, 0.5);
  auto value = cache.Get(1);
  ASSERT_TRUE(value.has_value());
  EXPECT_DOUBLE_EQ(*value, 0.5);
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.size, 1);
}

TEST(ShardedLruCacheTest, PutRefreshesExistingKey) {
  ShardedLruCache<double> cache(/*capacity=*/8, /*num_shards=*/1);
  cache.Put(1, 0.5);
  cache.Put(1, 0.75);
  auto value = cache.Get(1);
  ASSERT_TRUE(value.has_value());
  EXPECT_DOUBLE_EQ(*value, 0.75);
  EXPECT_EQ(cache.Stats().size, 1);
}

TEST(ShardedLruCacheTest, EvictsLeastRecentlyUsed) {
  ShardedLruCache<double> cache(/*capacity=*/3, /*num_shards=*/1);
  cache.Put(SameShardKey(1), 1.0);
  cache.Put(SameShardKey(2), 2.0);
  cache.Put(SameShardKey(3), 3.0);
  // Touch 1 so 2 becomes the LRU entry.
  EXPECT_TRUE(cache.Get(SameShardKey(1)).has_value());
  cache.Put(SameShardKey(4), 4.0);
  EXPECT_FALSE(cache.Get(SameShardKey(2)).has_value());
  EXPECT_TRUE(cache.Get(SameShardKey(1)).has_value());
  EXPECT_TRUE(cache.Get(SameShardKey(3)).has_value());
  EXPECT_TRUE(cache.Get(SameShardKey(4)).has_value());
  EXPECT_EQ(cache.Stats().evictions, 1);
}

TEST(ShardedLruCacheTest, ClearDropsEntriesButKeepsCounters) {
  ShardedLruCache<double> cache(/*capacity=*/8, /*num_shards=*/4);
  cache.Put(1, 1.0);
  cache.Put(uint64_t{5} << 48, 2.0);  // A different shard.
  EXPECT_TRUE(cache.Get(1).has_value());
  cache.Clear();
  EXPECT_FALSE(cache.Get(1).has_value());
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.size, 0);
  EXPECT_EQ(stats.hits, 1);  // Counters survive the flush.
}

TEST(ShardedLruCacheTest, ZeroCapacityDisables) {
  ShardedLruCache<double> cache(/*capacity=*/0);
  EXPECT_FALSE(cache.enabled());
  cache.Put(1, 1.0);
  EXPECT_FALSE(cache.Get(1).has_value());
  EXPECT_EQ(cache.Stats().size, 0);
}

TEST(ShardedLruCacheTest, SmallCapacityNotInflatedByShardCount) {
  // The shard count clamps to the capacity: a budget of 1 with the
  // default 8 shards must behave as a one-entry cache, not silently grow
  // to one entry per shard.
  ShardedLruCache<double> tiny(/*capacity=*/1, /*num_shards=*/8);
  tiny.Put(uint64_t{0} << 48, 0.0);
  tiny.Put(uint64_t{5} << 48, 5.0);  // Would be another shard pre-clamp.
  EXPECT_EQ(tiny.Stats().size, 1);
  EXPECT_FALSE(tiny.Get(uint64_t{0} << 48).has_value());
  EXPECT_TRUE(tiny.Get(uint64_t{5} << 48).has_value());

  // capacity=12 across 8 shards rounds the slice up (2 per shard): 12
  // hot entries fit even when they spread across every shard.
  ShardedLruCache<double> cache(/*capacity=*/12, /*num_shards=*/8);
  for (uint64_t i = 0; i < 12; ++i) {
    cache.Put((i % 8) << 48 | i, static_cast<double>(i));
  }
  EXPECT_EQ(cache.Stats().evictions, 0);
  EXPECT_EQ(cache.Stats().size, 12);
}

TEST(ShardedLruCacheTest, NonPowerOfTwoShardCountRoundsDown) {
  // 7 shards rounds down to 4; capacity splits across them without losing
  // entries to out-of-range shards.
  ShardedLruCache<double> cache(/*capacity=*/64, /*num_shards=*/7);
  for (uint64_t i = 0; i < 16; ++i) cache.Put(i << 48 | i, static_cast<double>(i));
  for (uint64_t i = 0; i < 16; ++i) {
    EXPECT_TRUE(cache.Get(i << 48 | i).has_value()) << i;
  }
}

TEST(ShardedLruCacheTest, ConcurrentPutGetIsSafe) {
  ShardedLruCache<double> cache(/*capacity=*/256, /*num_shards=*/8);
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&cache, w] {
      for (uint64_t i = 0; i < 2000; ++i) {
        const uint64_t key = (i % 64) << 48 | (i + static_cast<uint64_t>(w));
        cache.Put(key, static_cast<double>(i));
        if (auto value = cache.Get(key)) {
          // A concurrent refresh may have replaced the value, but it must
          // always be one some thread wrote for this key's i.
          EXPECT_GE(*value, 0.0);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const CacheStats stats = cache.Stats();
  EXPECT_GT(stats.hits + stats.misses, 0);
}

// --- Generation churn -------------------------------------------------
// The service embeds the bundle generation in every cache key and flushes
// on hot reload. These tests cover that lifecycle at the cache layer:
// stale generations can never be served, and Clear racing live traffic is
// safe and leaves a consistent, working cache.

/// A generation-tagged key the way the service builds them: the same
/// payload hash under a new generation is a different key.
constexpr uint64_t GenKey(uint64_t generation, uint64_t payload) {
  return (generation << 32) ^ payload;
}

TEST(ShardedLruCacheTest, GenerationChurnNeverServesStaleValues) {
  ShardedLruCache<double> cache(/*capacity=*/64, /*num_shards=*/4);
  for (uint64_t payload = 0; payload < 16; ++payload) {
    cache.Put(GenKey(1, payload), 100.0 + static_cast<double>(payload));
  }
  // Hot reload: generation 1 dies, the cache is flushed eagerly.
  cache.Clear();
  for (uint64_t payload = 0; payload < 16; ++payload) {
    cache.Put(GenKey(2, payload), 200.0 + static_cast<double>(payload));
  }
  for (uint64_t payload = 0; payload < 16; ++payload) {
    EXPECT_FALSE(cache.Get(GenKey(1, payload)).has_value())
        << "stale generation-1 entry survived the flush, payload " << payload;
    auto value = cache.Get(GenKey(2, payload));
    ASSERT_TRUE(value.has_value()) << payload;
    EXPECT_DOUBLE_EQ(*value, 200.0 + static_cast<double>(payload));
  }
}

TEST(ShardedLruCacheTest, RepeatedChurnKeepsSizeBounded) {
  // Ten reload cycles: each generation fills the cache, then dies. Size
  // must track only the live generation; counters accumulate across all.
  ShardedLruCache<double> cache(/*capacity=*/32, /*num_shards=*/4);
  for (uint64_t generation = 1; generation <= 10; ++generation) {
    cache.Clear();
    for (uint64_t payload = 0; payload < 24; ++payload) {
      cache.Put(GenKey(generation, payload), static_cast<double>(generation));
    }
    EXPECT_LE(cache.Stats().size, 32) << "generation " << generation;
    auto value = cache.Get(GenKey(generation, 0));
    if (value.has_value()) {
      EXPECT_DOUBLE_EQ(*value, static_cast<double>(generation));
    }
  }
  EXPECT_GT(cache.Stats().hits + cache.Stats().misses, 0);
}

TEST(ShardedLruCacheTest, ClearRacingTrafficIsSafeAndNeverCrossesGenerations) {
  // Reader/writer threads cycle through generations while a churn thread
  // flushes repeatedly (the reload race). Any value read must equal the
  // value written for that exact generation-tagged key — a flush may lose
  // entries, but it must never surface a wrong or torn one.
  ShardedLruCache<double> cache(/*capacity=*/256, /*num_shards=*/8);
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 3; ++w) {
    workers.emplace_back([&cache, &stop, &violations, w] {
      for (uint64_t i = 0; !stop.load(); ++i) {
        const uint64_t generation = i % 5;
        const uint64_t payload = (i + static_cast<uint64_t>(w)) % 64;
        const uint64_t key = GenKey(generation, payload);
        const double expected =
            static_cast<double>(generation) * 1000.0 + static_cast<double>(payload);
        cache.Put(key, expected);
        if (auto value = cache.Get(key)) {
          if (*value != expected) violations.fetch_add(1);
        }
      }
    });
  }
  std::thread churner([&cache, &stop] {
    for (int i = 0; i < 200; ++i) {
      cache.Clear();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    stop.store(true);
  });
  churner.join();
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(violations.load(), 0);
  // The cache still works after the churn storm.
  cache.Put(GenKey(99, 1), 42.0);
  auto value = cache.Get(GenKey(99, 1));
  ASSERT_TRUE(value.has_value());
  EXPECT_DOUBLE_EQ(*value, 42.0);
}

TEST(HistogramTest, EmptySnapshotIsZero) {
  Histogram histogram;
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 0);
  EXPECT_DOUBLE_EQ(snapshot.p50, 0.0);
  EXPECT_DOUBLE_EQ(snapshot.mean(), 0.0);
}

TEST(HistogramTest, QuantilesAreOrderedAndBracketed) {
  Histogram histogram;
  for (int i = 1; i <= 1000; ++i) histogram.Record(i * 1e-5);  // 10us..10ms.
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 1000);
  EXPECT_DOUBLE_EQ(snapshot.min, 1e-5);
  EXPECT_DOUBLE_EQ(snapshot.max, 1e-2);
  EXPECT_LE(snapshot.p50, snapshot.p95);
  EXPECT_LE(snapshot.p95, snapshot.p99);
  // Log-bucketed quantiles are approximate; 30% tolerance is far tighter
  // than the 1.15 bucket growth compounds to over the range.
  EXPECT_NEAR(snapshot.p50, 5e-3, 5e-3 * 0.3);
  EXPECT_GE(snapshot.p99, snapshot.p50);
  EXPECT_LE(snapshot.p99, snapshot.max * 1.2);
}

TEST(HistogramTest, ResetClears) {
  Histogram histogram;
  histogram.Record(1.0);
  histogram.Reset();
  EXPECT_EQ(histogram.Snapshot().count, 0);
}

TEST(HistogramTest, ConcurrentRecordLosesNothing) {
  Histogram histogram;
  std::vector<std::thread> workers;
  for (int w = 0; w < 8; ++w) {
    workers.emplace_back([&histogram] {
      for (int i = 0; i < 10000; ++i) histogram.Record(1e-4);
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(histogram.Snapshot().count, 80000);
}

TEST(HistogramTest, AllNegativeSamplesReportNegativeMax) {
  Histogram histogram;
  histogram.Record(-5.0);
  histogram.Record(-2.0);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  // A 0.0-seeded max never drops below zero, so all-negative samples used
  // to report max = 0; the -infinity seed lets the true extrema through.
  EXPECT_DOUBLE_EQ(snapshot.min, -5.0);
  EXPECT_DOUBLE_EQ(snapshot.max, -2.0);

  // Reset restores the sentinel seeds, not 0.0.
  histogram.Reset();
  histogram.Record(-1.0);
  EXPECT_DOUBLE_EQ(histogram.Snapshot().max, -1.0);
}

TEST(HistogramTest, ConcurrentExtremaAreExact) {
  Histogram histogram;
  // Every recorded value lies in [1.0, 2.0); one thread also records the
  // exact global minimum (1.0) and maximum (2.5) mid-flight. Min/max must
  // come out exact — no first-sample race may leave the 0-value seed (or a
  // losing CAS) in either extremum.
  std::vector<std::thread> workers;
  for (int w = 0; w < 8; ++w) {
    workers.emplace_back([&histogram, w] {
      for (int i = 0; i < 5000; ++i) {
        histogram.Record(1.0 + static_cast<double>((w * 5000 + i) % 997) / 997.0);
      }
    });
  }
  workers.emplace_back([&histogram] {
    histogram.Record(1.0);
    histogram.Record(2.5);
  });
  for (std::thread& worker : workers) worker.join();
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 8 * 5000 + 2);
  EXPECT_DOUBLE_EQ(snapshot.min, 1.0);
  EXPECT_DOUBLE_EQ(snapshot.max, 2.5);
}

}  // namespace
}  // namespace serve
}  // namespace microbrowse
