// Copyright 2026 The Microbrowse Authors
//
// Reactor/legacy parity: the epoll serving core and the legacy
// thread-per-connection core must be observationally equivalent. Every
// deterministic exchange — protocol responses, refusal vocabulary
// (overloaded / deadline_exceeded / draining), drain-time observability,
// plain-HTTP scrapes — is run against both cores side by side and
// compared byte for byte. Endpoints whose payload is inherently
// non-deterministic (statsz/metricsz latency percentiles) are compared
// structurally instead.
//
// The whole suite is parameterised over epoll triggering mode (level and
// edge) crossed with the request scheduler (FIFO baseline and work
// stealing): every combination must be byte-identical to the legacy core
// running the same scheduler, which makes all io_model × epoll_mode ×
// scheduler combinations pairwise equivalent by transitivity.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/socket.h"
#include "corpus/generator.h"
#include "corpus/pair_extraction.h"
#include "io/atomic_file.h"
#include "io/serialization.h"
#include "microbrowse/classifier.h"
#include "microbrowse/stats_db.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace microbrowse {
namespace serve {
namespace {

class ParityTest
    : public ::testing::TestWithParam<std::tuple<EpollMode, Scheduler>> {
 protected:
  static void SetUpTestSuite() {
    const std::string dir =
        ::testing::TempDir() + "/serve_parity_test_" + std::to_string(::getpid());
    ASSERT_TRUE(CreateDirectories(dir).ok());
    AdCorpusOptions corpus_options;
    corpus_options.num_adgroups = 60;
    corpus_options.seed = 23;
    auto generated = GenerateAdCorpus(corpus_options);
    ASSERT_TRUE(generated.ok());
    const PairCorpus pairs = ExtractSignificantPairs(generated->corpus, {});
    const FeatureStatsDb db = BuildFeatureStats(pairs, {});
    const ClassifierConfig config = ClassifierConfig::M6();
    const CoupledDataset dataset = BuildClassifierDataset(pairs, db, config, 23);
    auto model = TrainSnippetClassifier(dataset, config);
    ASSERT_TRUE(model.ok());
    paths_ = new BundlePaths;
    paths_->model_path = dir + "/model.txt";
    paths_->stats_path = dir + "/stats.tsv";
    ASSERT_TRUE(SaveClassifier(*model, dataset.t_registry, dataset.p_registry,
                               paths_->model_path)
                    .ok());
    ASSERT_TRUE(SaveFeatureStats(db, paths_->stats_path).ok());
  }

  static void TearDownTestSuite() { delete paths_; }

  void SetUp() override { ASSERT_TRUE(registry_.LoadInitial(*paths_).ok()); }

  /// Base server options carrying this instantiation's epoll mode and
  /// scheduler (the legacy core ignores the epoll mode).
  ServerOptions BaseOptions() const {
    ServerOptions options;
    options.epoll_mode = std::get<0>(GetParam());
    options.scheduler = std::get<1>(GetParam());
    return options;
  }

  static BundlePaths* paths_;
  BundleRegistry registry_;
};

BundlePaths* ParityTest::paths_ = nullptr;

/// The same server configuration stood up twice, once per serving core,
/// over one shared bundle registry (separate services, so metrics stay
/// isolated per core).
class ParityServers {
 public:
  ParityServers(BundleRegistry* registry, ServerOptions base,
                ServiceOptions service_options = {})
      : epoll_service_(registry, service_options),
        legacy_service_(registry, service_options) {
    base.port = 0;
    base.io_model = IoModel::kEpoll;
    epoll_server_ = std::make_unique<Server>(&epoll_service_, base);
    base.io_model = IoModel::kLegacyThreads;
    legacy_server_ = std::make_unique<Server>(&legacy_service_, base);
    auto epoll_port = epoll_server_->Start();
    auto legacy_port = legacy_server_->Start();
    EXPECT_TRUE(epoll_port.ok());
    EXPECT_TRUE(legacy_port.ok());
    epoll_port_ = epoll_port.value_or(0);
    legacy_port_ = legacy_port.value_or(0);
  }

  uint16_t epoll_port() const { return epoll_port_; }
  uint16_t legacy_port() const { return legacy_port_; }
  Server& epoll_server() { return *epoll_server_; }
  Server& legacy_server() { return *legacy_server_; }

 private:
  ScoringService epoll_service_;
  ScoringService legacy_service_;
  std::unique_ptr<Server> epoll_server_;
  std::unique_ptr<Server> legacy_server_;
  uint16_t epoll_port_ = 0;
  uint16_t legacy_port_ = 0;
};

/// One synchronous protocol connection.
class Client {
 public:
  explicit Client(uint16_t port) {
    auto socket = TcpConnect("127.0.0.1", port);
    EXPECT_TRUE(socket.ok()) << socket.status().ToString();
    if (socket.ok()) {
      socket_ = std::make_unique<Socket>(std::move(*socket));
      reader_ = std::make_unique<LineReader>(*socket_);
    }
  }

  bool ok() const { return socket_ != nullptr; }
  Status SendLine(const std::string& line) { return SendAll(*socket_, line + "\n"); }
  Status SendRaw(const std::string& bytes) { return SendAll(*socket_, bytes); }

  /// The next raw response line; empty on EOF/error.
  std::string ReadLine() {
    std::string line;
    auto got = reader_->ReadLine(&line);
    if (!got.ok() || !*got) return "";
    return line;
  }

  /// Everything until EOF (the HTTP exchange shape).
  std::string ReadAll() {
    std::string all;
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::recv(socket_->fd(), chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      all.append(chunk, static_cast<size_t>(n));
    }
    return all;
  }

 private:
  std::unique_ptr<Socket> socket_;
  std::unique_ptr<LineReader> reader_;
};

/// Sends `request` on a fresh connection and returns the one-line response.
std::string OneShot(uint16_t port, const std::string& request) {
  Client client(port);
  if (!client.ok()) return "<connect failed>";
  if (!client.SendLine(request).ok()) return "<send failed>";
  return client.ReadLine();
}

TEST_P(ParityTest, DeterministicResponsesAreByteIdentical) {
  ParityServers servers(&registry_, BaseOptions());
  const std::vector<std::string> requests = {
      R"({"type":"ping","id":"p1"})",
      R"({"type":"ping"})",
      R"({"type":"healthz","id":"h"})",
      R"({"type":"readyz","id":"r"})",
      R"({"type":"score_pair","id":"s1","a":"cheap flights|book now|save big","b":"flights|deals today|limited"})",
      R"({"type":"predict_ctr","id":"c1","snippet":"cheap flights|book now|save big"})",
      R"({"type":"examine","id":"e1","snippet":"cheap flights|book now"})",
      // Refusal/error vocabulary must match too.
      R"({"type":"score_pair","id":"d0","deadline_ms":"0","a":"x|y","b":"z|w"})",
      R"({"type":"no_such_endpoint","id":"u"})",
      R"({"not json at all)",
      R"({"type":"score_pair","id":"m"})",  // Missing required fields.
  };
  for (const std::string& request : requests) {
    const std::string epoll_response = OneShot(servers.epoll_port(), request);
    const std::string legacy_response = OneShot(servers.legacy_port(), request);
    EXPECT_EQ(epoll_response, legacy_response) << "request: " << request;
    EXPECT_FALSE(epoll_response.empty()) << "request: " << request;
  }
}

TEST_P(ParityTest, PipelinedBurstKeepsOrderWithOneWorker) {
  // With one worker and max_batch 1 the queue is FIFO end to end, so both
  // cores must deliver the identical response *sequence*, not just set.
  ServerOptions options = BaseOptions();
  options.num_threads = 1;
  options.max_batch = 1;
  ParityServers servers(&registry_, options);
  std::string burst;
  for (int i = 0; i < 8; ++i) {
    burst += R"({"type":"ping","id":"q)" + std::to_string(i) + "\"}\n";
  }
  for (bool blank_lines : {false, true}) {
    // Interleaved blank lines (and CRLF line endings) are skipped by both
    // framers without producing responses.
    std::string wire = burst;
    if (blank_lines) {
      wire.clear();
      for (int i = 0; i < 8; ++i) {
        wire += "\r\n\n" + (R"({"type":"ping","id":"q)" + std::to_string(i) + "\"}\r\n");
      }
    }
    Client epoll_client(servers.epoll_port());
    Client legacy_client(servers.legacy_port());
    ASSERT_TRUE(epoll_client.ok() && legacy_client.ok());
    ASSERT_TRUE(epoll_client.SendRaw(wire).ok());
    ASSERT_TRUE(legacy_client.SendRaw(wire).ok());
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(epoll_client.ReadLine(), legacy_client.ReadLine())
          << "position " << i << " blank_lines=" << blank_lines;
    }
  }
}

TEST_P(ParityTest, OverloadRefusalIsByteIdentical) {
  ServiceOptions service_options;
  service_options.allow_debug_sleep = true;
  ServerOptions options = BaseOptions();
  options.num_threads = 1;  // One worker occupied by the sleep...
  options.max_queue = 1;    // ...and room for exactly one queued request.
  ParityServers servers(&registry_, options, service_options);

  auto exchange_on = [](uint16_t port) -> std::vector<std::string> {
    Client client(port);
    EXPECT_TRUE(client.ok());
    EXPECT_TRUE(client.SendLine(R"({"type":"debug_sleep","ms":600,"id":"z"})").ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    // q0 takes the queue slot; q1 must be shed. Same connection, so the
    // intake order is deterministic. The refusal is produced inline by the
    // intake path but *delivered* in request order — the sequencer holds
    // it until the sleeper's response and q0's pong have flushed — so the
    // three lines arrive as z, q0, q1 on both cores.
    EXPECT_TRUE(client.SendLine(R"({"type":"ping","id":"q0"})").ok());
    EXPECT_TRUE(client.SendLine(R"({"type":"ping","id":"q1"})").ok());
    return {client.ReadLine(), client.ReadLine(), client.ReadLine()};
  };
  const std::vector<std::string> epoll_exchange = exchange_on(servers.epoll_port());
  const std::vector<std::string> legacy_exchange = exchange_on(servers.legacy_port());
  ASSERT_EQ(epoll_exchange.size(), legacy_exchange.size());
  for (size_t i = 0; i < epoll_exchange.size(); ++i) {
    EXPECT_EQ(epoll_exchange[i], legacy_exchange[i]) << "line " << i;
  }
  EXPECT_NE(epoll_exchange[0].find("\"id\":\"z\""), std::string::npos)
      << epoll_exchange[0];
  EXPECT_NE(epoll_exchange[1].find("\"id\":\"q0\""), std::string::npos)
      << epoll_exchange[1];
  const std::string& refusal = epoll_exchange[2];
  EXPECT_NE(refusal.find("\"overloaded\""), std::string::npos) << refusal;
  EXPECT_NE(refusal.find("\"id\":\"q1\""), std::string::npos) << refusal;
}

TEST_P(ParityTest, PipelinedBurstKeepsOrderWithManyWorkers) {
  // Many workers finish pipelined requests out of order — the first
  // request sleeps while the pings behind it complete instantly — but the
  // per-connection sequencer must still deliver responses in request
  // order, identically on both cores.
  ServiceOptions service_options;
  service_options.allow_debug_sleep = true;
  ServerOptions options = BaseOptions();
  options.num_threads = 4;
  ParityServers servers(&registry_, options, service_options);
  std::string burst = R"({"type":"debug_sleep","ms":300,"id":"q0"})" "\n";
  for (int i = 1; i < 8; ++i) {
    burst += R"({"type":"ping","id":"q)" + std::to_string(i) + "\"}\n";
  }
  Client epoll_client(servers.epoll_port());
  Client legacy_client(servers.legacy_port());
  ASSERT_TRUE(epoll_client.ok() && legacy_client.ok());
  ASSERT_TRUE(epoll_client.SendRaw(burst).ok());
  ASSERT_TRUE(legacy_client.SendRaw(burst).ok());
  for (int i = 0; i < 8; ++i) {
    const std::string epoll_line = epoll_client.ReadLine();
    EXPECT_EQ(epoll_line, legacy_client.ReadLine()) << "position " << i;
    EXPECT_NE(epoll_line.find("\"id\":\"q" + std::to_string(i) + "\""),
              std::string::npos)
        << "position " << i << ": " << epoll_line;
  }
}

TEST_P(ParityTest, DrainRefusalsAndHealthAreByteIdentical) {
  ServiceOptions service_options;
  service_options.allow_debug_sleep = true;
  ServerOptions options = BaseOptions();
  options.num_threads = 1;
  options.drain_deadline_ms = 5000;
  ParityServers servers(&registry_, options, service_options);

  auto drain_exchange = [](Server& server, uint16_t port) -> std::vector<std::string> {
    // A connection established before the drain begins: the listener closes
    // at drain time, but established connections keep being answered.
    Client busy(port);
    Client probe(port);
    EXPECT_TRUE(busy.ok() && probe.ok());
    EXPECT_TRUE(busy.SendLine(R"({"type":"debug_sleep","ms":700,"id":"hold"})").ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    std::thread drainer([&server] { (void)server.Drain(); });
    // Wait until the drain state is visible, not a fixed sleep.
    for (int i = 0; i < 200 && !server.draining(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    std::vector<std::string> exchange;
    // Scoring work is refused with the draining vocabulary...
    EXPECT_TRUE(probe.SendLine(R"({"type":"ping","id":"during"})").ok());
    exchange.push_back(probe.ReadLine());
    // ...while observability stays answerable right through the drain.
    EXPECT_TRUE(probe.SendLine(R"({"type":"healthz","id":"hz"})").ok());
    exchange.push_back(probe.ReadLine());
    EXPECT_TRUE(probe.SendLine(R"({"type":"readyz","id":"rz"})").ok());
    exchange.push_back(probe.ReadLine());
    drainer.join();
    return exchange;
  };
  // NOTE: ping is scoring-path vocabulary ("served during drain" covers it),
  // so the first line is a served pong on both cores — the point is that
  // whatever the policy says, both cores say the same bytes.
  const auto epoll_exchange = drain_exchange(servers.epoll_server(), servers.epoll_port());
  const auto legacy_exchange =
      drain_exchange(servers.legacy_server(), servers.legacy_port());
  ASSERT_EQ(epoll_exchange.size(), legacy_exchange.size());
  for (size_t i = 0; i < epoll_exchange.size(); ++i) {
    EXPECT_EQ(epoll_exchange[i], legacy_exchange[i]) << "exchange line " << i;
    EXPECT_FALSE(epoll_exchange[i].empty()) << "exchange line " << i;
  }
  // And the draining flag must actually have been reflected.
  EXPECT_NE(epoll_exchange[1].find("draining"), std::string::npos) << epoll_exchange[1];
}

TEST_P(ParityTest, ScoringRefusalDuringDrainIsByteIdentical) {
  ServiceOptions service_options;
  service_options.allow_debug_sleep = true;
  ServerOptions options = BaseOptions();
  options.num_threads = 1;
  options.drain_deadline_ms = 5000;
  options.drain_retry_after_ms = 250;
  ParityServers servers(&registry_, options, service_options);

  auto refusal = [](Server& server, uint16_t port) -> std::string {
    Client busy(port);
    Client probe(port);
    EXPECT_TRUE(busy.ok() && probe.ok());
    EXPECT_TRUE(busy.SendLine(R"({"type":"debug_sleep","ms":700,"id":"hold"})").ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    std::thread drainer([&server] { (void)server.Drain(); });
    for (int i = 0; i < 200 && !server.draining(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_TRUE(
        probe.SendLine(R"({"type":"score_pair","id":"sd","a":"x|y","b":"z|w"})").ok());
    const std::string line = probe.ReadLine();
    drainer.join();
    return line;
  };
  const std::string epoll_refusal = refusal(servers.epoll_server(), servers.epoll_port());
  const std::string legacy_refusal =
      refusal(servers.legacy_server(), servers.legacy_port());
  EXPECT_EQ(epoll_refusal, legacy_refusal);
  EXPECT_NE(epoll_refusal.find("\"draining\""), std::string::npos) << epoll_refusal;
  EXPECT_NE(epoll_refusal.find("\"retry_after_ms\":250"), std::string::npos)
      << epoll_refusal;
}

TEST_P(ParityTest, HttpExchangesAreByteIdentical) {
  ParityServers servers(&registry_, BaseOptions());
  const std::vector<std::string> gets = {
      "GET /healthz HTTP/1.0\r\n\r\n",
      "GET /readyz HTTP/1.1\r\nHost: x\r\nUser-Agent: parity\r\n\r\n",
      "GET /nope HTTP/1.0\r\n\r\n",
      "GET /healthz/ HTTP/1.0\r\n\r\n",  // Trailing slash normalisation.
  };
  for (const std::string& get : gets) {
    Client epoll_client(servers.epoll_port());
    Client legacy_client(servers.legacy_port());
    ASSERT_TRUE(epoll_client.ok() && legacy_client.ok());
    ASSERT_TRUE(epoll_client.SendRaw(get).ok());
    ASSERT_TRUE(legacy_client.SendRaw(get).ok());
    // Full raw exchange: status line, headers, body, then close.
    const std::string epoll_response = epoll_client.ReadAll();
    const std::string legacy_response = legacy_client.ReadAll();
    EXPECT_EQ(epoll_response, legacy_response) << "request: " << get;
    EXPECT_NE(epoll_response.find("HTTP/1.0 "), std::string::npos) << get;
  }
}

TEST_P(ParityTest, MetricsScrapeIsStructurallyEquivalent) {
  // /metricsz and statsz payloads embed latency percentiles, so the two
  // cores cannot be byte-compared; the envelope must still match.
  ParityServers servers(&registry_, BaseOptions());
  auto scrape = [](uint16_t port) {
    Client client(port);
    EXPECT_TRUE(client.ok());
    EXPECT_TRUE(client.SendRaw("GET /metricsz HTTP/1.0\r\n\r\n").ok());
    return client.ReadAll();
  };
  const std::string epoll_scrape = scrape(servers.epoll_port());
  const std::string legacy_scrape = scrape(servers.legacy_port());
  const auto first_line = [](const std::string& response) {
    return response.substr(0, response.find("\r\n"));
  };
  EXPECT_EQ(first_line(epoll_scrape), "HTTP/1.0 200 OK");
  EXPECT_EQ(first_line(legacy_scrape), "HTTP/1.0 200 OK");
  for (const std::string* scrape_text : {&epoll_scrape, &legacy_scrape}) {
    EXPECT_NE(scrape_text->find("Content-Type: text/plain"), std::string::npos);
    EXPECT_NE(scrape_text->find("mb_serve"), std::string::npos)
        << "metrics body missing serve counters";
  }
  // Protocol statsz: both answer ok with the same top-level envelope.
  const std::string epoll_statsz =
      OneShot(servers.epoll_port(), R"({"type":"statsz","id":"st"})");
  const std::string legacy_statsz =
      OneShot(servers.legacy_port(), R"({"type":"statsz","id":"st"})");
  for (const std::string* statsz : {&epoll_statsz, &legacy_statsz}) {
    EXPECT_NE(statsz->find("\"ok\":true"), std::string::npos) << *statsz;
    EXPECT_NE(statsz->find("\"id\":\"st\""), std::string::npos) << *statsz;
  }
}

TEST_P(ParityTest, OverlongLineClosesTheConnectionOnBothCores) {
  ServerOptions options = BaseOptions();
  options.max_line_bytes = 1024;
  ParityServers servers(&registry_, options);
  for (uint16_t port : {servers.epoll_port(), servers.legacy_port()}) {
    Client client(port);
    ASSERT_TRUE(client.ok());
    (void)client.SendRaw(std::string(8 * 1024, 'a'));
    // No response, just a close: the oversized line is never served.
    EXPECT_EQ(client.ReadLine(), "") << "port " << port;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ParityTest,
    ::testing::Combine(::testing::Values(EpollMode::kLevel, EpollMode::kEdge),
                       ::testing::Values(Scheduler::kFifo,
                                         Scheduler::kWorkStealing)),
    [](const ::testing::TestParamInfo<std::tuple<EpollMode, Scheduler>>& info) {
      const std::string mode =
          std::get<0>(info.param) == EpollMode::kEdge ? "Edge" : "Level";
      const std::string sched =
          std::get<1>(info.param) == Scheduler::kWorkStealing ? "Steal" : "Fifo";
      return mode + sched;
    });

}  // namespace
}  // namespace serve
}  // namespace microbrowse
