// Copyright 2026 The Microbrowse Authors
//
// End-to-end TCP tests for the mbserved front end: real sockets against an
// ephemeral port, pipelined out-of-order responses matched by id echo, and
// intake-side admission control shedding load with "overloaded". The whole
// suite is parameterized over both serving cores (epoll reactor and the
// legacy thread-per-connection path) — every serving semantic must hold on
// both.

#include "serve/server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/socket.h"
#include "corpus/generator.h"
#include "corpus/pair_extraction.h"
#include "io/atomic_file.h"
#include "io/serialization.h"
#include "microbrowse/classifier.h"
#include "microbrowse/stats_db.h"
#include "serve/protocol.h"

namespace microbrowse {
namespace serve {
namespace {

/// One client connection speaking the line protocol synchronously.
class TestClient {
 public:
  static std::unique_ptr<TestClient> ConnectTo(uint16_t port) {
    auto socket = TcpConnect("127.0.0.1", port);
    EXPECT_TRUE(socket.ok()) << socket.status().ToString();
    if (!socket.ok()) return nullptr;
    auto client = std::make_unique<TestClient>();
    client->socket_ = std::make_unique<Socket>(std::move(*socket));
    client->reader_ = std::make_unique<LineReader>(*client->socket_);
    return client;
  }

  Status Send(const std::string& line) { return SendAll(*socket_, line + "\n"); }
  Status SendRaw(const std::string& bytes) { return SendAll(*socket_, bytes); }

  /// Closes the client side of the connection (as a one-shot client does).
  void Close() {
    reader_.reset();
    socket_.reset();
  }

  /// Reads one line without failing the test — for asserting that the
  /// server closed the connection (EOF / reset).
  Result<bool> TryReadLine(std::string* line) { return reader_->ReadLine(line); }

  /// Reads one response line; fails the test on EOF or parse error.
  Request ReadResponse() {
    std::string line;
    auto got = reader_->ReadLine(&line);
    EXPECT_TRUE(got.ok() && *got) << "connection closed early";
    auto response = ParseRequest(line);
    EXPECT_TRUE(response.ok()) << line;
    return response.ok() ? *response : Request{};
  }

 private:
  std::unique_ptr<Socket> socket_;
  std::unique_ptr<LineReader> reader_;
};

/// Connects with a tiny receive buffer negotiated at the handshake (set
/// before connect, so the advertised TCP window honours it). A client that
/// then stops reading fills every buffer between server and itself within a
/// few kilobytes — the reproducible form of "peer stopped reading".
Socket ConnectTinyRcvBuf(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  Socket socket(fd);
  const int rcvbuf = 2048;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return socket;
}

class ServerTest : public ::testing::TestWithParam<IoModel> {
 protected:
  static void SetUpTestSuite() {
    // Unique per process: parallel ctest runs each TEST in its own process,
    // each re-running this setup — a shared path would tear the artifacts.
    const std::string dir =
        ::testing::TempDir() + "/serve_server_test_" + std::to_string(::getpid());
    ASSERT_TRUE(CreateDirectories(dir).ok());
    AdCorpusOptions corpus_options;
    corpus_options.num_adgroups = 60;
    corpus_options.seed = 23;
    auto generated = GenerateAdCorpus(corpus_options);
    ASSERT_TRUE(generated.ok());
    const PairCorpus pairs = ExtractSignificantPairs(generated->corpus, {});
    const FeatureStatsDb db = BuildFeatureStats(pairs, {});
    const ClassifierConfig config = ClassifierConfig::M6();
    const CoupledDataset dataset = BuildClassifierDataset(pairs, db, config, 23);
    auto model = TrainSnippetClassifier(dataset, config);
    ASSERT_TRUE(model.ok());
    paths_ = new BundlePaths;
    paths_->model_path = dir + "/model.txt";
    paths_->stats_path = dir + "/stats.tsv";
    ASSERT_TRUE(SaveClassifier(*model, dataset.t_registry, dataset.p_registry,
                               paths_->model_path)
                    .ok());
    ASSERT_TRUE(SaveFeatureStats(db, paths_->stats_path).ok());
  }

  static void TearDownTestSuite() { delete paths_; }

  void SetUp() override { ASSERT_TRUE(registry_.LoadInitial(*paths_).ok()); }

  /// Ephemeral-port options for the serving core under test.
  ServerOptions BaseOptions() const {
    ServerOptions options;
    options.port = 0;
    options.io_model = GetParam();
    return options;
  }

  static BundlePaths* paths_;
  BundleRegistry registry_;
};

BundlePaths* ServerTest::paths_ = nullptr;

INSTANTIATE_TEST_SUITE_P(
    IoModels, ServerTest,
    ::testing::Values(IoModel::kEpoll, IoModel::kLegacyThreads),
    [](const ::testing::TestParamInfo<IoModel>& info) {
      return info.param == IoModel::kEpoll ? "Epoll" : "Threads";
    });

TEST_P(ServerTest, StartsOnEphemeralPortAndAnswersPing) {
  ScoringService service(&registry_);
  ServerOptions options = BaseOptions();
  Server server(&service, options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();
  ASSERT_GT(*port, 0);
  EXPECT_EQ(server.port(), *port);

  auto client = TestClient::ConnectTo(*port);
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Send(R"({"type":"ping","id":"p"})").ok());
  const Request response = client->ReadResponse();
  EXPECT_EQ(response.Get("ok"), "true");
  EXPECT_EQ(response.Get("id"), "p");
  server.Stop();
}

TEST_P(ServerTest, ScoresPairsOverTheWire) {
  ScoringService service(&registry_);
  ServerOptions options = BaseOptions();
  Server server(&service, options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  auto client = TestClient::ConnectTo(*port);
  ASSERT_NE(client, nullptr);
  JsonWriter request;
  request.String("type", "score_pair")
      .String("a", "cheap flights|book now|save big")
      .String("b", "flights|deals today|limited");
  ASSERT_TRUE(client->Send(request.Finish()).ok());
  const Request response = client->ReadResponse();
  EXPECT_EQ(response.Get("ok"), "true");
  EXPECT_FALSE(response.Get("margin").empty());
  EXPECT_TRUE(response.Get("winner") == "a" || response.Get("winner") == "b");
  server.Stop();
}

TEST_P(ServerTest, PipelinedRequestsMatchedByIdEcho) {
  ScoringService service(&registry_);
  ServerOptions options = BaseOptions();
  options.num_threads = 4;
  options.max_batch = 3;  // Force multiple batches for one burst.
  Server server(&service, options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  auto client = TestClient::ConnectTo(*port);
  ASSERT_NE(client, nullptr);
  constexpr int kRequests = 12;
  std::string burst;
  for (int i = 0; i < kRequests; ++i) {
    JsonWriter request;
    request.String("type", "score_pair")
        .String("id", "r" + std::to_string(i))
        .String("a", "alpha line|beta " + std::to_string(i))
        .String("b", "gamma line|delta");
    burst += request.Finish() + "\n";
  }
  // One write, many requests: the batching workers may *complete* them out
  // of order, but the per-connection sequencer delivers responses in
  // request order; the id echo remains the client-visible contract.
  ASSERT_TRUE(client->SendRaw(burst).ok());
  std::map<std::string, std::string> margin_by_id;
  for (int i = 0; i < kRequests; ++i) {
    const Request response = client->ReadResponse();
    EXPECT_EQ(response.Get("ok"), "true");
    margin_by_id[std::string(response.Get("id"))] = std::string(response.Get("margin"));
  }
  ASSERT_EQ(margin_by_id.size(), static_cast<size_t>(kRequests));
  for (int i = 0; i < kRequests; ++i) {
    EXPECT_TRUE(margin_by_id.count("r" + std::to_string(i))) << i;
  }
  server.Stop();
}

TEST_P(ServerTest, SchedulerMetricsRenderInPrometheusScrape) {
  // The work-stealing scheduler's observability surface: after traffic has
  // flowed through the steal pool, a /metricsz scrape must expose the
  // batch-size summary and the steal counter under their Prometheus names.
  ScoringService service(&registry_);
  ServerOptions options = BaseOptions();
  options.scheduler = Scheduler::kWorkStealing;
  Server server(&service, options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  auto client = TestClient::ConnectTo(*port);
  ASSERT_NE(client, nullptr);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(client->Send(R"({"type":"ping","id":"m)" + std::to_string(i) + "\"}").ok());
    EXPECT_EQ(client->ReadResponse().Get("ok"), "true");
  }
  ASSERT_TRUE(client->Send(R"({"type":"metricsz","id":"scrape"})").ok());
  const Request response = client->ReadResponse();
  EXPECT_EQ(response.Get("ok"), "true");
  const std::string text(response.Get("metrics"));
  EXPECT_NE(text.find("mb_serve_batch_size{quantile="), std::string::npos) << text;
  EXPECT_NE(text.find("mb_serve_batch_size_count"), std::string::npos) << text;
  EXPECT_NE(text.find("mb_serve_steal_count"), std::string::npos) << text;
  server.Stop();
}

TEST_P(ServerTest, OverloadShedsWithErrorNotQueueing) {
  ServiceOptions service_options;
  service_options.allow_debug_sleep = true;
  ScoringService service(&registry_, service_options);
  ServerOptions options = BaseOptions();
  options.num_threads = 1;  // One worker, so a sleep stalls the pipeline...
  options.max_queue = 1;    // ...and the queue saturates immediately.
  Server server(&service, options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  auto client = TestClient::ConnectTo(*port);
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Send(R"({"type":"debug_sleep","ms":400,"id":"sleep"})").ok());
  // Give the lone worker time to start the sleep before the burst.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  constexpr int kPings = 20;
  std::string burst;
  for (int i = 0; i < kPings; ++i) {
    burst += R"({"type":"ping","id":"q)" + std::to_string(i) + "\"}\n";
  }
  ASSERT_TRUE(client->SendRaw(burst).ok());

  int ok_count = 0;
  int overloaded = 0;
  for (int i = 0; i < kPings + 1; ++i) {
    const Request response = client->ReadResponse();
    if (response.Get("ok") == "true") {
      ++ok_count;
    } else {
      EXPECT_EQ(response.Get("error"), "overloaded");
      EXPECT_FALSE(response.Get("id").empty());  // Shed requests echo ids too.
      ++overloaded;
    }
  }
  // The sleep and the one queued ping succeed; the rest of the burst is
  // shed at constant latency instead of queueing behind the stalled worker.
  EXPECT_GE(ok_count, 2);
  EXPECT_GE(overloaded, 1);
  EXPECT_GE(service.metrics().rejected_overload->Value(), static_cast<int64_t>(overloaded));
  server.Stop();
}

TEST_P(ServerTest, DisconnectedClientsAreReapedWhileRunning) {
  ScoringService service(&registry_);
  ServerOptions options = BaseOptions();
  Server server(&service, options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  auto client = TestClient::ConnectTo(*port);
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Send(R"({"type":"ping"})").ok());
  EXPECT_EQ(client->ReadResponse().Get("ok"), "true");
  EXPECT_EQ(server.active_connections(), 1u);

  // A one-shot client disconnecting must release its connection while the
  // server keeps running — not only at Stop() — or fds and reader threads
  // accumulate until the process hits the fd limit.
  client->Close();
  for (int i = 0; i < 500 && server.active_connections() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server.active_connections(), 0u);

  // The server still accepts and serves new connections afterwards.
  auto next = TestClient::ConnectTo(*port);
  ASSERT_NE(next, nullptr);
  ASSERT_TRUE(next->Send(R"({"type":"ping","id":"n"})").ok());
  EXPECT_EQ(next->ReadResponse().Get("id"), "n");
  server.Stop();
}

TEST_P(ServerTest, OverlongLineFailsTheConnection) {
  ScoringService service(&registry_);
  ServerOptions options = BaseOptions();
  options.max_line_bytes = 1024;
  Server server(&service, options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  auto client = TestClient::ConnectTo(*port);
  ASSERT_NE(client, nullptr);
  // 8 KB with no newline: the server must fail the connection instead of
  // buffering the never-ending line. The send may itself fail with EPIPE
  // once the server shuts the socket down — both outcomes are fine.
  (void)client->SendRaw(std::string(8 * 1024, 'a'));
  std::string line;
  const auto got = client->TryReadLine(&line);
  EXPECT_TRUE(!got.ok() || !*got) << "server kept an unbounded line open";

  for (int i = 0; i < 500 && server.active_connections() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server.active_connections(), 0u);

  // The flood did not take the server down for other clients.
  auto next = TestClient::ConnectTo(*port);
  ASSERT_NE(next, nullptr);
  ASSERT_TRUE(next->Send(R"({"type":"ping"})").ok());
  EXPECT_EQ(next->ReadResponse().Get("ok"), "true");
  server.Stop();
}

TEST_P(ServerTest, StopReturnsPromptlyWithSilentConnectedClient) {
  ScoringService service(&registry_);
  ServerOptions options = BaseOptions();
  // Eviction is an hour away: Stop's promptness must come from waking the
  // reader (socket shutdown + the receive-timeout tick), not from waiting
  // out the idle timer. Regression test for Stop() hanging on a reader
  // parked in read(2) under a silent client.
  options.idle_timeout_ms = 3'600'000;
  Server server(&service, options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  auto client = TestClient::ConnectTo(*port);  // Connects, never sends a byte.
  ASSERT_NE(client, nullptr);
  for (int i = 0; i < 500 && server.active_connections() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(server.active_connections(), 1u);

  const auto start = std::chrono::steady_clock::now();
  server.Stop();
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start);
  // Generous bound (the tick is <= 1 s); the failure mode is an indefinite
  // hang, not a slow stop.
  EXPECT_LT(elapsed.count(), 5000) << "Stop() blocked on a silent client";
}

TEST_P(ServerTest, StopWhileClientsConnectedIsClean) {
  ScoringService service(&registry_);
  ServerOptions options = BaseOptions();
  Server server(&service, options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());
  auto client = TestClient::ConnectTo(*port);
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Send(R"({"type":"ping"})").ok());
  EXPECT_EQ(client->ReadResponse().Get("ok"), "true");
  server.Stop();   // With the connection still open.
  server.Stop();   // Idempotent.
}

TEST_P(ServerTest, SlowConsumerIsEvictedNotPinned) {
  // Regression test: a client that sends requests and then stops *reading*
  // used to pin a worker (and the reader writing refusals) inside an
  // unbounded send forever. Both cores must instead evict the connection
  // within the write timeout and count mb.serve.write_timeout.
  ScoringService service(&registry_);
  ServerOptions options = BaseOptions();
  options.sndbuf_bytes = 4096;       // Tiny kernel buffer: stalls in KBs.
  options.write_timeout_ms = 300;
  options.max_outbox_bytes = 32 * 1024;
  options.idle_timeout_ms = 2000;    // Keeps the eviction tick fast.
  Server server(&service, options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  Socket stalled = ConnectTinyRcvBuf(*port);
  ASSERT_TRUE(stalled.valid());
  // Enough pings that their responses (and the "overloaded" refusals past
  // the in-flight cap) overrun the ~12 KB of combined socket buffering
  // many times over. The client never reads a byte of them.
  std::string burst;
  for (int i = 0; i < 3000; ++i) {
    burst += R"({"type":"ping","id":"s)" + std::to_string(i) + "\"}\n";
  }
  // Bounded send: once the server evicts us mid-burst this fails with
  // EPIPE/reset, which is exactly the success condition.
  (void)SendAllTimed(stalled, burst, 5000);

  bool evicted = false;
  for (int i = 0; i < 1500; ++i) {
    if (service.metrics().write_timeout->Value() >= 1 &&
        server.active_connections() == 0) {
      evicted = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(evicted) << "stalled consumer still connected; write_timeout="
                       << service.metrics().write_timeout->Value()
                       << " active=" << server.active_connections();

  // No worker is pinned: the server still answers a well-behaved client.
  auto next = TestClient::ConnectTo(*port);
  ASSERT_NE(next, nullptr);
  ASSERT_TRUE(next->Send(R"({"type":"ping","id":"after"})").ok());
  EXPECT_EQ(next->ReadResponse().Get("id"), "after");
  server.Stop();
}

TEST_P(ServerTest, ChurnedConnectionsLeaveNoUnjoinedReaders) {
  // Regression test: on the legacy path, exited reader threads were only
  // joined from the accept loop *before* the next accept — churn followed
  // by a quiet listener accumulated unjoined thread handles without bound.
  // Each exiting reader now joins its predecessors, so after any amount of
  // churn at most one handle awaits a join. (The reactor path has no
  // reader threads and must always report zero.)
  ScoringService service(&registry_);
  Server server(&service, BaseOptions());
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  constexpr int kChurn = 8;
  for (int i = 0; i < kChurn; ++i) {
    auto client = TestClient::ConnectTo(*port);
    ASSERT_NE(client, nullptr);
    ASSERT_TRUE(client->Send(R"({"type":"ping"})").ok());
    EXPECT_EQ(client->ReadResponse().Get("ok"), "true");
    client->Close();
    // Wait for the disconnect to be fully processed (connection removed)
    // so every reader exit lands on the finished list before the next
    // round — the exact sequence that used to accumulate handles.
    for (int j = 0; j < 500 && server.active_connections() > 0; ++j) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_EQ(server.active_connections(), 0u) << "round " << i;
  }
  // The listener has been quiet the whole time, so the accept loop never
  // reaped: the bound must come from the readers' own exit path.
  EXPECT_LE(server.finished_reader_handles(), 1u);
  server.Stop();
}

}  // namespace
}  // namespace serve
}  // namespace microbrowse
