// Copyright 2026 The Microbrowse Authors
//
// Wire-codec tests: the flat JSON request parser (including the escape and
// error corners netcat-driven clients will hit) and the response writer.

#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

namespace microbrowse {
namespace serve {
namespace {

TEST(ParseRequestTest, ParsesFlatObject) {
  auto request = ParseRequest(
      R"({"type":"score_pair","a":"cheap flights|book now","b":"flights|deals","id":"r1"})");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->Get("type"), "score_pair");
  EXPECT_EQ(request->Get("a"), "cheap flights|book now");
  EXPECT_EQ(request->Get("id"), "r1");
  EXPECT_TRUE(request->Has("b"));
  EXPECT_FALSE(request->Has("missing"));
  EXPECT_EQ(request->Get("missing", "fallback"), "fallback");
}

TEST(ParseRequestTest, ParsesNumbersBooleansAndNull) {
  auto request = ParseRequest(R"({"ms":250,"ratio":-1.5e2,"flag":true,"off":false,"n":null})");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->Get("ms"), "250");
  EXPECT_EQ(request->Get("ratio"), "-1.5e2");
  EXPECT_EQ(request->Get("flag"), "true");
  EXPECT_EQ(request->Get("off"), "false");
  EXPECT_EQ(request->Get("n"), "null");
}

TEST(ParseRequestTest, ToleratesWhitespace) {
  auto request = ParseRequest("  { \"type\" : \"ping\" , \"id\" : \"x\" }  ");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->Get("type"), "ping");
}

TEST(ParseRequestTest, UnescapesStringValues) {
  auto request = ParseRequest(R"({"a":"tab\there \"quoted\" back\\slash","b":"Aé"})");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->Get("a"), "tab\there \"quoted\" back\\slash");
  EXPECT_EQ(request->Get("b"), "A\xc3\xa9");  // é -> UTF-8 é.
}

TEST(ParseRequestTest, EmptyObjectIsValid) {
  auto request = ParseRequest("{}");
  ASSERT_TRUE(request.ok());
  EXPECT_TRUE(request->fields.empty());
}

TEST(ParseRequestTest, RejectsMalformedInput) {
  // Nesting is explicitly outside the flat protocol.
  EXPECT_FALSE(ParseRequest(R"({"a":{"b":1}})").ok());
  EXPECT_FALSE(ParseRequest(R"({"a":[1,2]})").ok());
  // Structurally broken lines.
  EXPECT_FALSE(ParseRequest("").ok());
  EXPECT_FALSE(ParseRequest("not json").ok());
  EXPECT_FALSE(ParseRequest(R"({"a":"unterminated)").ok());
  EXPECT_FALSE(ParseRequest(R"({"a":1} trailing)").ok());
  EXPECT_FALSE(ParseRequest(R"({"a":bogus})").ok());
  EXPECT_FALSE(ParseRequest(R"({"a":"bad \x escape"})").ok());
  EXPECT_FALSE(ParseRequest(R"({"a":1,})").ok());
  EXPECT_FALSE(ParseRequest(R"({1:"key must be string"})").ok());
}

TEST(ParseRequestTest, ErrorsCarryPositionHint) {
  auto request = ParseRequest(R"({"a":1} x)");
  ASSERT_FALSE(request.ok());
  EXPECT_NE(request.status().message().find("byte"), std::string::npos)
      << request.status().ToString();
}

TEST(JsonWriterTest, BuildsResponseInInsertionOrder) {
  JsonWriter writer;
  writer.String("id", "r1").Bool("ok", true).Number("margin", 0.25).Int("gen", 3);
  EXPECT_EQ(writer.Finish(), R"({"id":"r1","ok":true,"margin":0.25,"gen":3})");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter writer;
  writer.String("error", "bad \"input\"\n\ttab\\");
  EXPECT_EQ(writer.Finish(), R"({"error":"bad \"input\"\n\ttab\\"})");
}

TEST(JsonWriterTest, RawSplicesNestedJson) {
  JsonWriter writer;
  writer.Raw("lines", R"([{"token":"a"}])").Bool("ok", true);
  EXPECT_EQ(writer.Finish(), R"({"lines":[{"token":"a"}],"ok":true})");
}

TEST(JsonWriterTest, NumbersSerializeWithRoundTripPrecision) {
  // Truncated output (e.g. %.6g) would make server-mode margins differ
  // from local batch scoring in the low decimal places; the parity check
  // needs parse(serialize(x)) == x bit for bit.
  const double values[] = {0.1, 1.0000001234567891, -123456.78901234567,
                           3.0000000000000002e-17};
  for (const double value : values) {
    JsonWriter writer;
    writer.Number("v", value);
    auto response = ParseRequest(writer.Finish());
    ASSERT_TRUE(response.ok()) << writer.Finish();
    EXPECT_EQ(std::strtod(std::string(response->Get("v")).c_str(), nullptr), value)
        << response->Get("v");
  }
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull) {
  JsonWriter writer;
  writer.Number("x", std::numeric_limits<double>::infinity());
  EXPECT_EQ(writer.Finish(), R"({"x":null})");
}

TEST(JsonRoundTripTest, WriterOutputReparses) {
  JsonWriter writer;
  writer.String("type", "score_pair").String("a", "piped|lines \"here\"").Number("v", -2.5);
  auto request = ParseRequest(writer.Finish());
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->Get("a"), "piped|lines \"here\"");
  EXPECT_EQ(request->Get("type"), "score_pair");
}

}  // namespace
}  // namespace serve
}  // namespace microbrowse
