// Copyright 2026 The Microbrowse Authors
//
// Concurrency hammering for the registry-backed serve metrics: /metricsz
// scrapes and hot reloads racing live scoring traffic, in-process at the
// service layer and over real sockets (plain-HTTP GET /metricsz) at the
// server layer. Run under the tsan preset (cmake --preset tsan) these
// tests assert the registry snapshot path is torn-read-free; under the
// default preset they still verify counter totals add up exactly.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/socket.h"
#include "common/string_util.h"
#include "corpus/generator.h"
#include "corpus/pair_extraction.h"
#include "io/atomic_file.h"
#include "io/serialization.h"
#include "microbrowse/classifier.h"
#include "microbrowse/stats_db.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/service.h"

namespace microbrowse {
namespace serve {
namespace {

std::string SnippetField(const Snippet& snippet) {
  std::string field;
  for (int i = 0; i < snippet.num_lines(); ++i) {
    if (i > 0) field += '|';
    field += Join(snippet.line(i), " ");
  }
  return field;
}

class MetricsConcurrencyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const std::string dir =
        ::testing::TempDir() + "/serve_metrics_test_" + std::to_string(::getpid());
    ASSERT_TRUE(CreateDirectories(dir).ok());
    AdCorpusOptions corpus_options;
    corpus_options.num_adgroups = 50;
    corpus_options.seed = 37;
    auto generated = GenerateAdCorpus(corpus_options);
    ASSERT_TRUE(generated.ok());
    const PairCorpus pairs = ExtractSignificantPairs(generated->corpus, {});
    const FeatureStatsDb db = BuildFeatureStats(pairs, {});
    const ClassifierConfig config = ClassifierConfig::M6();
    const CoupledDataset dataset = BuildClassifierDataset(pairs, db, config, 37);
    auto model = TrainSnippetClassifier(dataset, config);
    ASSERT_TRUE(model.ok());
    paths_ = new BundlePaths;
    paths_->model_path = dir + "/model.txt";
    paths_->stats_path = dir + "/stats.tsv";
    ASSERT_TRUE(SaveClassifier(*model, dataset.t_registry, dataset.p_registry,
                               paths_->model_path)
                    .ok());
    ASSERT_TRUE(SaveFeatureStats(db, paths_->stats_path).ok());
    fields_ = new std::vector<std::string>;
    for (const auto& adgroup : generated->corpus.adgroups) {
      for (const auto& creative : adgroup.creatives) {
        fields_->push_back(SnippetField(creative.snippet));
      }
    }
    ASSERT_GE(fields_->size(), 4u);
  }

  static void TearDownTestSuite() {
    delete fields_;
    delete paths_;
  }

  void SetUp() override { ASSERT_TRUE(registry_.LoadInitial(*paths_).ok()); }

  static std::string ScoreLine(size_t a, size_t b) {
    JsonWriter request;
    request.String("type", "score_pair")
        .String("a", (*fields_)[a % fields_->size()])
        .String("b", (*fields_)[b % fields_->size()]);
    return request.Finish();
  }

  static BundlePaths* paths_;
  static std::vector<std::string>* fields_;
  BundleRegistry registry_;
};

BundlePaths* MetricsConcurrencyTest::paths_ = nullptr;
std::vector<std::string>* MetricsConcurrencyTest::fields_ = nullptr;

TEST_F(MetricsConcurrencyTest, ScrapesAndReloadsRaceScoringWithoutTearing) {
  ScoringService service(&registry_);
  constexpr int kScorers = 4;
  constexpr int kScoresEach = 120;
  constexpr int kScrapers = 2;
  constexpr int kScrapesEach = 60;
  constexpr int kReloads = 40;

  std::atomic<int> scoring_failures{0};
  std::atomic<int> scrape_failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kScorers; ++t) {
    threads.emplace_back([&service, &scoring_failures, t] {
      for (int i = 0; i < kScoresEach; ++i) {
        auto response = ParseRequest(service.HandleLine(ScoreLine(t * 31 + i, t + i)));
        if (!response.ok() || response->Get("ok") != "true") {
          scoring_failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int t = 0; t < kScrapers; ++t) {
    threads.emplace_back([&service, &scrape_failures] {
      for (int i = 0; i < kScrapesEach; ++i) {
        // Both scrape surfaces: the protocol endpoint and the raw text.
        auto response = ParseRequest(service.HandleLine("{\"type\":\"metricsz\"}"));
        const std::string text = service.RenderMetricsText();
        if (!response.ok() || response->Get("ok") != "true" ||
            response->Get("metrics").find("mb_serve_score_pair_requests") ==
                std::string::npos ||
            text.find("mb_serve_score_pair_requests") == std::string::npos) {
          scrape_failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Reloads race everything (mbserved's SIGHUP handler routes through the
  // same HandleLine path these use).
  threads.emplace_back([&service] {
    for (int i = 0; i < kReloads; ++i) {
      (void)service.HandleLine("{\"type\":\"reload\"}");
    }
  });
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(scoring_failures.load(), 0);
  EXPECT_EQ(scrape_failures.load(), 0);
  // Exactly one requests increment per issued request — no lost updates,
  // no double counting, regardless of interleaving.
  const ServerMetrics& metrics = service.metrics();
  EXPECT_EQ(metrics.endpoint(Endpoint::kScorePair).requests(), kScorers * kScoresEach);
  EXPECT_EQ(metrics.endpoint(Endpoint::kScorePair).errors(), 0);
  EXPECT_EQ(metrics.endpoint(Endpoint::kScorePair).cache_hits() +
                metrics.endpoint(Endpoint::kScorePair).cache_misses(),
            kScorers * kScoresEach);
  EXPECT_EQ(metrics.endpoint(Endpoint::kMetricsz).requests(), kScrapers * kScrapesEach);
  EXPECT_EQ(metrics.endpoint(Endpoint::kReload).requests(), kReloads);
  EXPECT_EQ(metrics.endpoint(Endpoint::kScorePair).latency().Count(),
            kScorers * kScoresEach);
}

TEST_F(MetricsConcurrencyTest, HttpMetricszScrapeDuringLiveTraffic) {
  ScoringService service(&registry_);
  ServerOptions options;
  options.port = 0;
  Server server(&service, options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  std::atomic<bool> stop{false};
  std::thread scorer([&stop, port] {
    auto socket = TcpConnect("127.0.0.1", *port);
    if (!socket.ok()) return;
    LineReader reader(*socket);
    std::string line;
    for (int i = 0; !stop.load(std::memory_order_relaxed) && i < 500; ++i) {
      if (!SendAll(*socket, ScoreLine(i, i * 7 + 1) + "\n").ok()) break;
      auto got = reader.ReadLine(&line);
      if (!got.ok() || !*got) break;
    }
  });

  for (int scrape = 0; scrape < 10; ++scrape) {
    auto socket = TcpConnect("127.0.0.1", *port);
    ASSERT_TRUE(socket.ok());
    ASSERT_TRUE(SendAll(*socket, "GET /metricsz HTTP/1.0\r\nHost: test\r\n\r\n").ok());
    LineReader reader(*socket);
    std::string body;
    std::string line;
    while (true) {
      auto got = reader.ReadLine(&line);
      if (!got.ok() || !*got) break;
      body += line;
      body.push_back('\n');
    }
    EXPECT_NE(body.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(body.find("mb_serve_score_pair_requests"), std::string::npos);
    EXPECT_NE(body.find("mb_serve_metricsz_requests"), std::string::npos);
  }
  stop.store(true, std::memory_order_relaxed);
  scorer.join();

  // Unknown paths 404 without killing the server.
  auto socket = TcpConnect("127.0.0.1", *port);
  ASSERT_TRUE(socket.ok());
  ASSERT_TRUE(SendAll(*socket, "GET /nope HTTP/1.0\r\n\r\n").ok());
  LineReader reader(*socket);
  std::string line;
  auto got = reader.ReadLine(&line);
  ASSERT_TRUE(got.ok() && *got);
  EXPECT_NE(line.find("404"), std::string::npos);
  server.Stop();
}

}  // namespace
}  // namespace serve
}  // namespace microbrowse
