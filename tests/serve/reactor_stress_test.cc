// Copyright 2026 The Microbrowse Authors
//
// Concurrency stress for the epoll reactor core, built to run under
// ThreadSanitizer (ctest -L concurrency): pipelining clients, an HTTP
// scraper, a slow consumer that triggers write-timeout eviction, and a
// mid-traffic drain all hammer the reactor at once. The assertions are
// deliberately loose — the payload here is the interleaving coverage, and
// TSan turning any data race into a hard failure.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/socket.h"
#include "serve/server.h"

namespace microbrowse {
namespace serve {
namespace {

/// Connects with a tiny receive window (set before connect so the TCP
/// handshake advertises it) — the reproducible "peer stopped reading".
Socket ConnectTinyRcvBuf(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Socket();
  Socket socket(fd);
  const int rcvbuf = 2048;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Socket();
  }
  return socket;
}

TEST(ReactorStressTest, ConcurrentPipelinesScrapesEvictionsAndDrain) {
  // No bundle staged: ping / healthz / HTTP scrapes exercise the whole
  // transport without the scoring model, which keeps the test fast enough
  // to run under TSan's ~10x slowdown.
  BundleRegistry registry;
  ScoringService service(&registry);
  ServerOptions options;
  options.port = 0;
  options.io_model = IoModel::kEpoll;
  options.num_threads = 4;
  options.idle_timeout_ms = 2000;      // Fast tick (tick = idle/4).
  options.write_timeout_ms = 200;      // Slow consumers die quickly.
  options.max_outbox_bytes = 16 * 1024;
  options.sndbuf_bytes = 4096;
  Server server(&service, options);
  auto port = server.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  std::atomic<bool> running{true};
  std::atomic<int64_t> responses_seen{0};

  // Pipelining protocol clients: connect, burst, read everything back,
  // reconnect — connection churn and in-order intake race the tick, the
  // flush wakeups and each other.
  std::vector<std::thread> clients;
  for (int t = 0; t < 6; ++t) {
    clients.emplace_back([&, t] {
      while (running.load(std::memory_order_acquire)) {
        auto socket = TcpConnect("127.0.0.1", *port);
        if (!socket.ok()) break;  // Listener closed (drain started).
        LineReader reader(*socket);
        std::string burst;
        for (int i = 0; i < 20; ++i) {
          burst += R"({"type":"ping","id":"t)" + std::to_string(t) + "." +
                   std::to_string(i) + "\"}\n";
        }
        if (!SendAll(*socket, burst).ok()) continue;
        std::string line;
        for (int i = 0; i < 20; ++i) {
          auto got = reader.ReadLine(&line);
          if (!got.ok() || !*got) break;  // Refused/killed mid-drain is fine.
          responses_seen.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // An HTTP scraper racing the protocol traffic (shared metric registry,
  // reactor-side HTTP state machine, close-after-flush path).
  std::thread scraper([&] {
    while (running.load(std::memory_order_acquire)) {
      auto socket = TcpConnect("127.0.0.1", *port);
      if (!socket.ok()) break;
      if (!SendAll(*socket, "GET /metricsz HTTP/1.0\r\n\r\n").ok()) continue;
      char chunk[4096];
      while (::recv(socket->fd(), chunk, sizeof(chunk), 0) > 0) {
      }
    }
  });

  // Slow consumers: send pings, never read the responses, let the reactor
  // evict them on the write-timeout path while everything else runs.
  std::thread staller([&] {
    while (running.load(std::memory_order_acquire)) {
      Socket stalled = ConnectTinyRcvBuf(*port);
      if (!stalled.valid()) break;
      std::string burst;
      for (int i = 0; i < 400; ++i) {
        burst += R"({"type":"ping","id":"stall)" + std::to_string(i) + "\"}\n";
      }
      (void)SendAllTimed(stalled, burst, 500);
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(1200));

  // Drain mid-traffic: refusals, outbox flushing and the listener close all
  // race the client threads above.
  const Status drained = server.Drain();
  running.store(false, std::memory_order_release);
  for (std::thread& client : clients) client.join();
  scraper.join();
  staller.join();

  EXPECT_TRUE(drained.ok() ||
              drained.code() == StatusCode::kDeadlineExceeded ||
              drained.code() == StatusCode::kFailedPrecondition)
      << drained.ToString();
  EXPECT_GT(responses_seen.load(), 0) << "no traffic was actually served";
  // The request-accounting invariant must survive the storm: nothing is
  // left marked in flight once the drain (or hard stop) completed.
  EXPECT_EQ(server.inflight_requests(), 0);
  server.Stop();
}

}  // namespace
}  // namespace serve
}  // namespace microbrowse
