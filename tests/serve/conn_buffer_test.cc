// Copyright 2026 The Microbrowse Authors
//
// Unit tests for the reactor's zero-copy line-framing buffer and the
// buffer pool that recycles its storage across connections.

#include "serve/conn_buffer.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace microbrowse {
namespace serve {
namespace {

/// Simulates the kernel writing `bytes` into the buffer tail.
void Feed(ConnBuffer& buffer, std::string_view bytes) {
  char* tail = buffer.ReserveTail(bytes.size());
  std::memcpy(tail, bytes.data(), bytes.size());
  buffer.CommitTail(bytes.size());
}

TEST(ConnBufferTest, FramesCompleteLinesAndStripsTerminators) {
  ConnBuffer buffer(1024);
  Feed(buffer, "alpha\nbeta\r\ngamma");
  std::string_view line;
  ASSERT_TRUE(buffer.NextLine(&line));
  EXPECT_EQ(line, "alpha");
  ASSERT_TRUE(buffer.NextLine(&line));
  EXPECT_EQ(line, "beta");  // The \r before the \n is stripped too.
  EXPECT_FALSE(buffer.NextLine(&line));  // "gamma" has no newline yet.
  EXPECT_EQ(buffer.pending_bytes(), 5u);
  Feed(buffer, "\n");
  ASSERT_TRUE(buffer.NextLine(&line));
  EXPECT_EQ(line, "gamma");
  EXPECT_EQ(buffer.pending_bytes(), 0u);
}

TEST(ConnBufferTest, LineSplitAcrossManyCommitsReassembles) {
  ConnBuffer buffer(1024);
  const std::string expected = "a somewhat longer request line";
  for (char c : expected) Feed(buffer, std::string_view(&c, 1));
  std::string_view line;
  EXPECT_FALSE(buffer.NextLine(&line));
  Feed(buffer, "\n");
  ASSERT_TRUE(buffer.NextLine(&line));
  EXPECT_EQ(line, expected);
}

TEST(ConnBufferTest, EmptyLinesAreReturnedEmpty) {
  ConnBuffer buffer(1024);
  Feed(buffer, "\n\r\nx\n");
  std::string_view line;
  ASSERT_TRUE(buffer.NextLine(&line));
  EXPECT_EQ(line, "");
  ASSERT_TRUE(buffer.NextLine(&line));
  EXPECT_EQ(line, "");
  ASSERT_TRUE(buffer.NextLine(&line));
  EXPECT_EQ(line, "x");
}

TEST(ConnBufferTest, OverlongPartialLineFlipsPermanently) {
  ConnBuffer buffer(16);
  Feed(buffer, std::string(17, 'a'));  // 17 bytes, no newline.
  EXPECT_TRUE(buffer.overlong());
  // Even a newline arriving later does not un-flip it — the connection is
  // already condemned and the caller must not serve the oversized line.
  Feed(buffer, "\n");
  EXPECT_TRUE(buffer.overlong());
}

TEST(ConnBufferTest, ConsumedLinesDoNotCountTowardTheLineBound) {
  ConnBuffer buffer(16);
  std::string_view line;
  // Many short lines through a small-bound buffer: consumed bytes must not
  // accumulate into a spurious overlong verdict.
  for (int i = 0; i < 100; ++i) {
    Feed(buffer, "0123456789\n");
    ASSERT_TRUE(buffer.NextLine(&line));
    EXPECT_EQ(line, "0123456789");
  }
  EXPECT_FALSE(buffer.overlong());
}

TEST(ConnBufferTest, TotalBytesCountsEverythingEverCommitted) {
  ConnBuffer buffer(1024);
  EXPECT_EQ(buffer.total_bytes(), 0u);
  Feed(buffer, "abc\n");
  Feed(buffer, "de");
  EXPECT_EQ(buffer.total_bytes(), 6u);
  std::string_view line;
  ASSERT_TRUE(buffer.NextLine(&line));
  EXPECT_EQ(buffer.total_bytes(), 6u);  // Consumption does not change it.
}

TEST(BufferPoolTest, ReleasedStorageIsReused) {
  BufferPool pool;
  EXPECT_EQ(pool.pooled(), 0u);
  {
    ConnBuffer buffer(1024, &pool);
    Feed(buffer, "hello\n");
  }
  EXPECT_EQ(pool.pooled(), 1u);
  {
    ConnBuffer buffer(1024, &pool);
    EXPECT_EQ(pool.pooled(), 0u);  // Acquired the pooled storage.
    std::string_view line;
    Feed(buffer, "world\n");
    ASSERT_TRUE(buffer.NextLine(&line));
    EXPECT_EQ(line, "world");  // No leftover bytes from the prior owner.
  }
  EXPECT_EQ(pool.pooled(), 1u);
}

TEST(BufferPoolTest, ReusedStorageCarriesNoStaleFragments) {
  // A connection that dies mid-line leaves unconsumed bytes in its buffer.
  // The next connection acquiring that storage must start empty: no
  // pending bytes, no overlong verdict, and its first line must be exactly
  // what it received — never a splice with the previous owner's fragment.
  BufferPool pool;
  {
    ConnBuffer buffer(1024, &pool);
    Feed(buffer, "half-finished request with no newline");
    EXPECT_GT(buffer.pending_bytes(), 0u);
  }  // Dies with the fragment still buffered.
  ASSERT_EQ(pool.pooled(), 1u);
  {
    ConnBuffer buffer(1024, &pool);
    EXPECT_EQ(buffer.pending_bytes(), 0u);
    EXPECT_EQ(buffer.total_bytes(), 0u);
    EXPECT_FALSE(buffer.overlong());
    Feed(buffer, "fresh\n");
    std::string_view line;
    ASSERT_TRUE(buffer.NextLine(&line));
    EXPECT_EQ(line, "fresh");
    EXPECT_FALSE(buffer.NextLine(&line)) << "stale fragment resurfaced: " << line;
  }
}

TEST(BufferPoolTest, OverlongVerdictDoesNotFollowTheStorage) {
  // The overlong flag condemns a connection, not the recycled storage.
  BufferPool pool;
  {
    ConnBuffer buffer(8, &pool);
    Feed(buffer, std::string(64, 'a'));
    EXPECT_TRUE(buffer.overlong());
  }
  ConnBuffer buffer(8, &pool);
  EXPECT_FALSE(buffer.overlong());
  Feed(buffer, "ok\n");
  std::string_view line;
  ASSERT_TRUE(buffer.NextLine(&line));
  EXPECT_EQ(line, "ok");
}

TEST(BufferPoolTest, ChurnReachesSteadyStateReuse) {
  // Connection churn: after the first cycle the pool supplies every
  // subsequent buffer, so steady-state accepts allocate nothing.
  BufferPool pool;
  for (int i = 0; i < 100; ++i) {
    ConnBuffer buffer(1024, &pool);
    EXPECT_EQ(pool.pooled(), 0u) << "cycle " << i;  // Always reacquired.
    Feed(buffer, "req-" + std::to_string(i) + "\n");
    std::string_view line;
    ASSERT_TRUE(buffer.NextLine(&line));
    EXPECT_EQ(line, "req-" + std::to_string(i));
  }
  EXPECT_EQ(pool.pooled(), 1u);
}

TEST(BufferPoolTest, PoolRetentionIsBounded) {
  // More concurrent buffers than kMaxPooled: the overflow is freed, not
  // hoarded.
  BufferPool pool;
  {
    std::vector<std::unique_ptr<ConnBuffer>> buffers;
    for (size_t i = 0; i < BufferPool::kMaxPooled + 32; ++i) {
      buffers.push_back(std::make_unique<ConnBuffer>(1024, &pool));
      Feed(*buffers.back(), "x\n");
    }
  }
  EXPECT_EQ(pool.pooled(), BufferPool::kMaxPooled);
}

TEST(BufferPoolTest, OversizedBuffersAreDroppedNotPooled) {
  BufferPool pool;
  {
    ConnBuffer buffer(4 << 20, &pool);
    // Grow the storage past the pool's retention cap.
    Feed(buffer, std::string(BufferPool::kMaxPooledCapacity + 1, 'x'));
  }
  EXPECT_EQ(pool.pooled(), 0u) << "one huge request permanently inflated the pool";
}

}  // namespace
}  // namespace serve
}  // namespace microbrowse
