// Copyright 2026 The Microbrowse Authors
//
// Work-stealing scoring pool tests (DESIGN.md §17): exactly-once dispatch,
// the global max_queue admission bound, Stop's drain-everything invariant
// and the steal path itself (an idle worker relieving a loaded victim).

#include "serve/scoring_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/histogram.h"
#include "common/metrics.h"

namespace microbrowse {
namespace serve {
namespace {

/// Polls `done` for up to five seconds. Returns false on timeout.
bool WaitFor(const std::function<bool()>& done) {
  for (int i = 0; i < 5000; ++i) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return done();
}

TEST(ScoringPoolTest, EveryTaskIsHandledExactlyOnce) {
  constexpr int kTasks = 500;
  std::vector<std::atomic<int>> handled(kTasks);
  std::atomic<int> total{0};
  ScoringPool::Options options;
  options.num_workers = 4;
  ScoringPool pool(options, [&](std::vector<ScoringTask>& batch) {
    for (const ScoringTask& task : batch) {
      handled[std::stoi(task.line)].fetch_add(1);
      total.fetch_add(1);
    }
  });
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_TRUE(pool.Submit(nullptr, std::to_string(i), Deadline::Infinite(),
                            static_cast<uint64_t>(i)));
  }
  ASSERT_TRUE(WaitFor([&] { return total.load() == kTasks; }));
  pool.Stop();
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(handled[i].load(), 1) << "task " << i;
  }
  EXPECT_EQ(pool.queued(), 0u);
}

TEST(ScoringPoolTest, RefusesBeyondMaxQueueAndRecovers) {
  std::atomic<bool> gate{true};
  std::atomic<int> entered{0};
  std::atomic<int> total{0};
  ScoringPool::Options options;
  options.num_workers = 1;
  options.max_batch = 1;
  options.max_queue = 8;
  ScoringPool pool(options, [&](std::vector<ScoringTask>& batch) {
    entered.fetch_add(1);
    while (gate.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    total.fetch_add(static_cast<int>(batch.size()));
  });
  // Occupy the single worker, then wait until its task has left the queue.
  ASSERT_TRUE(pool.Submit(nullptr, "hold", Deadline::Infinite(), 0));
  ASSERT_TRUE(WaitFor([&] { return entered.load() == 1 && pool.queued() == 0; }));
  // Admission is a global bound across all deques: exactly max_queue more.
  for (size_t i = 0; i < options.max_queue; ++i) {
    EXPECT_TRUE(pool.Submit(nullptr, "q", Deadline::Infinite(), i + 1)) << i;
  }
  EXPECT_EQ(pool.queued(), options.max_queue);
  EXPECT_FALSE(pool.Submit(nullptr, "shed", Deadline::Infinite(), 99));
  // Releasing the worker drains the backlog and re-opens admission.
  gate.store(false);
  ASSERT_TRUE(WaitFor([&] {
    return total.load() == static_cast<int>(options.max_queue) + 1;
  }));
  EXPECT_TRUE(pool.Submit(nullptr, "after", Deadline::Infinite(), 100));
  ASSERT_TRUE(WaitFor([&] { return total.load() == static_cast<int>(options.max_queue) + 2; }));
  pool.Stop();
}

TEST(ScoringPoolTest, StopDrainsEveryAdmittedTask) {
  // The drain accounting invariant: whatever was admitted is handled, even
  // when Stop arrives while the backlog is deep. (Chaos soak relies on
  // every admitted request producing exactly one response.)
  constexpr int kTasks = 50;
  std::vector<std::atomic<int>> handled(kTasks);
  ScoringPool::Options options;
  options.num_workers = 2;
  options.max_batch = 4;
  ScoringPool pool(options, [&](std::vector<ScoringTask>& batch) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    for (const ScoringTask& task : batch) handled[std::stoi(task.line)].fetch_add(1);
  });
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_TRUE(pool.Submit(nullptr, std::to_string(i), Deadline::Infinite(),
                            static_cast<uint64_t>(i)));
  }
  pool.Stop();  // Must not return before the backlog is fully handled.
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(handled[i].load(), 1) << "task " << i;
  }
  EXPECT_EQ(pool.queued(), 0u);
  // A stopped pool refuses new work.
  EXPECT_FALSE(pool.Submit(nullptr, "late", Deadline::Infinite(), 1000));
}

TEST(ScoringPoolTest, IdleWorkerStealsFromLoadedVictim) {
  // Round-robin intake alternates the two workers; every task routed to
  // worker 0 is slow and every task routed to worker 1 is instant, so
  // worker 1 goes idle while worker 0's deque is deep — it must steal
  // (and bump the steal counter) rather than sleep.
  Counter steal_count;
  ShardedHistogram batch_size;
  std::atomic<int> total{0};
  ScoringPool::Options options;
  options.num_workers = 2;
  options.max_batch = 1;  // Keeps the victim's deque visible to the thief.
  options.steal_count = &steal_count;
  options.batch_size = &batch_size;
  ScoringPool pool(options, [&](std::vector<ScoringTask>& batch) {
    for (const ScoringTask& task : batch) {
      if (task.line[0] == 's') {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      total.fetch_add(1);
    }
  });
  constexpr int kTasks = 200;
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_TRUE(pool.Submit(nullptr, i % 2 == 0 ? "slow" : "fast",
                            Deadline::Infinite(), static_cast<uint64_t>(i)));
  }
  ASSERT_TRUE(WaitFor([&] { return total.load() == kTasks; }));
  pool.Stop();
  EXPECT_GT(steal_count.Value(), 0);
  EXPECT_EQ(batch_size.Count(), kTasks);  // max_batch=1: one record per task.
}

}  // namespace
}  // namespace serve
}  // namespace microbrowse
