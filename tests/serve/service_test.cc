// Copyright 2026 The Microbrowse Authors
//
// ScoringService tests: endpoint behaviour, serve-vs-batch parity against
// the library scorer, result caching, and the hot-reload guarantees —
// generation swaps never tear or fail in-flight requests, and a corrupt
// replacement bundle (flipped bytes or an injected load fault) leaves the
// previous generation serving.

#include "serve/service.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "corpus/generator.h"
#include "corpus/pair_extraction.h"
#include "io/atomic_file.h"
#include "io/serialization.h"
#include "microbrowse/classifier.h"
#include "microbrowse/optimizer.h"
#include "microbrowse/stats_db.h"
#include "serve/bundle.h"
#include "serve/protocol.h"

namespace microbrowse {
namespace serve {
namespace {

std::string SnippetField(const Snippet& snippet) {
  std::string field;
  for (int i = 0; i < snippet.num_lines(); ++i) {
    if (i > 0) field += '|';
    field += Join(snippet.line(i), " ");
  }
  return field;
}

std::string ScorePairLine(const std::string& a, const std::string& b) {
  JsonWriter request;
  request.String("type", "score_pair").String("a", a).String("b", b);
  return request.Finish();
}

double FieldAsDouble(const Request& response, const std::string& key) {
  return std::stod(std::string(response.Get(key, "nan")));
}

int CountOccurrences(const std::string& text, const std::string& needle) {
  int count = 0;
  for (size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

/// Trains one small M6 bundle and stages its artifacts under TempDir; all
/// tests in the suite share it (bundles are immutable, tests only read).
class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    failpoint::DeactivateAll();
    // Unique per process: parallel ctest runs each TEST in its own process,
    // each re-running this setup — a shared path would tear the artifacts.
    dir_ = new std::string(::testing::TempDir() + "/serve_service_test_" +
                           std::to_string(::getpid()));
    ASSERT_TRUE(CreateDirectories(*dir_).ok());

    AdCorpusOptions corpus_options;
    corpus_options.num_adgroups = 80;
    corpus_options.seed = 11;
    auto generated = GenerateAdCorpus(corpus_options);
    ASSERT_TRUE(generated.ok());
    const PairCorpus pairs = ExtractSignificantPairs(generated->corpus, {});
    const FeatureStatsDb db = BuildFeatureStats(pairs, {});
    const ClassifierConfig config = ClassifierConfig::M6();
    const CoupledDataset dataset = BuildClassifierDataset(pairs, db, config, 11);
    auto model = TrainSnippetClassifier(dataset, config);
    ASSERT_TRUE(model.ok());

    paths_ = new BundlePaths;
    paths_->model_path = *dir_ + "/model.txt";
    paths_->stats_path = *dir_ + "/stats.tsv";
    ASSERT_TRUE(SaveClassifier(*model, dataset.t_registry, dataset.p_registry,
                               paths_->model_path)
                    .ok());
    ASSERT_TRUE(SaveFeatureStats(db, paths_->stats_path).ok());

    fields_ = new std::vector<std::string>;
    for (const auto& adgroup : generated->corpus.adgroups) {
      for (const auto& creative : adgroup.creatives) {
        fields_->push_back(SnippetField(creative.snippet));
      }
    }
    ASSERT_GE(fields_->size(), 8u);
  }

  static void TearDownTestSuite() {
    delete fields_;
    delete paths_;
    delete dir_;
  }

  void SetUp() override {
    failpoint::DeactivateAll();
    ASSERT_TRUE(registry_.LoadInitial(*paths_).ok());
  }
  void TearDown() override { failpoint::DeactivateAll(); }

  /// Handles `line` and requires a parseable {"ok":true,...} response.
  static Request HandleOk(ScoringService& service, const std::string& line) {
    auto response = ParseRequest(service.HandleLine(line));
    EXPECT_TRUE(response.ok()) << line;
    EXPECT_EQ(response->Get("ok"), "true") << "request " << line << " -> error "
                                           << response->Get("error");
    return *response;
  }

  static std::string* dir_;
  static BundlePaths* paths_;
  static std::vector<std::string>* fields_;
  BundleRegistry registry_;
};

std::string* ServiceTest::dir_ = nullptr;
BundlePaths* ServiceTest::paths_ = nullptr;
std::vector<std::string>* ServiceTest::fields_ = nullptr;

TEST_F(ServiceTest, PingAndUnknownType) {
  ScoringService service(&registry_);
  EXPECT_EQ(HandleOk(service, R"({"type":"ping","id":"p1"})").Get("id"), "p1");

  auto bad = ParseRequest(service.HandleLine(R"({"type":"frobnicate"})"));
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->Get("ok"), "false");
  EXPECT_NE(bad->Get("error").find("unknown type"), std::string::npos);

  auto garbage = ParseRequest(service.HandleLine("this is not json"));
  ASSERT_TRUE(garbage.ok());
  EXPECT_EQ(garbage->Get("ok"), "false");
}

TEST_F(ServiceTest, ScorePairMatchesLibraryScorer) {
  ScoringService service(&registry_);
  const std::string& a = (*fields_)[0];
  const std::string& b = (*fields_)[1];
  const Request response = HandleOk(service, ScorePairLine(a, b));
  const double served_margin = FieldAsDouble(response, "margin");
  EXPECT_EQ(response.Get("cache"), "miss");
  EXPECT_EQ(response.Get("gen"), "1");
  EXPECT_EQ(response.Get("winner"), served_margin >= 0 ? "a" : "b");

  // The same pair scored through the offline library path (fresh registry
  // copies, same artifacts) must agree exactly: serving is a cache +
  // transport around the identical arithmetic.
  auto saved = LoadClassifier(paths_->model_path);
  auto db = LoadFeatureStats(paths_->stats_path);
  ASSERT_TRUE(saved.ok());
  ASSERT_TRUE(db.ok());
  const double direct_margin = PredictPairMargin(
      Snippet::FromLines(Split(a, '|')), Snippet::FromLines(Split(b, '|')), *db,
      ClassifierConfig::M6(), saved->model, saved->t_registry, saved->p_registry);
  // Equal up to the wire decimal rendering of the double.
  EXPECT_NEAR(served_margin, direct_margin, 1e-4 * (1.0 + std::fabs(direct_margin)));
  EXPECT_EQ(served_margin >= 0, direct_margin >= 0);
}

TEST_F(ServiceTest, ScorePairCacheHitReturnsIdenticalMargin) {
  ScoringService service(&registry_);
  const std::string line = ScorePairLine((*fields_)[2], (*fields_)[3]);
  const Request miss = HandleOk(service, line);
  const Request hit = HandleOk(service, line);
  EXPECT_EQ(miss.Get("cache"), "miss");
  EXPECT_EQ(hit.Get("cache"), "hit");
  EXPECT_EQ(miss.Get("margin"), hit.Get("margin"));
  EXPECT_EQ(service.pair_cache_stats().hits, 1);
}

TEST_F(ServiceTest, ScorePairValidatesFields) {
  ScoringService service(&registry_);
  auto response = ParseRequest(service.HandleLine(R"({"type":"score_pair","a":"only a"})"));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->Get("ok"), "false");
}

TEST_F(ServiceTest, PredictCtrIsCachedAndInRange) {
  ScoringService service(&registry_);
  JsonWriter request;
  request.String("type", "predict_ctr").String("snippet", (*fields_)[4]);
  const Request miss = HandleOk(service, request.Finish());
  const Request hit = HandleOk(service, request.Finish());
  EXPECT_EQ(miss.Get("cache"), "miss");
  EXPECT_EQ(hit.Get("cache"), "hit");
  EXPECT_EQ(miss.Get("score"), hit.Get("score"));
  const double ctr = FieldAsDouble(miss, "ctr");
  EXPECT_GT(ctr, 0.0);
  EXPECT_LT(ctr, 1.0);
}

TEST_F(ServiceTest, ExamineBreaksDownEveryToken) {
  ScoringService service(&registry_);
  JsonWriter request;
  request.String("type", "examine").String("snippet", "alpha beta|gamma");
  // Examine responses carry a nested lines array, which the flat request
  // parser rejects by design — assert on the raw response text.
  const std::string response = service.HandleLine(request.Finish());
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos) << response;
  EXPECT_NE(response.find("\"curve_fitted\":"), std::string::npos);
  // Three tokens, each with an examination probability and a relevance.
  EXPECT_EQ(CountOccurrences(response, "\"token\""), 3);
  EXPECT_EQ(CountOccurrences(response, "\"examine\""), 3);
  EXPECT_EQ(CountOccurrences(response, "\"relevance\""), 3);
}

TEST_F(ServiceTest, ReloadBumpsGenerationAndFlushesCaches) {
  ScoringService service(&registry_);
  const std::string line = ScorePairLine((*fields_)[0], (*fields_)[1]);
  const Request before = HandleOk(service, line);
  EXPECT_EQ(before.Get("gen"), "1");
  HandleOk(service, line);  // Warm the cache.

  const Request reload = HandleOk(service, R"({"type":"reload","force":true})");
  EXPECT_EQ(reload.Get("gen"), "2");
  EXPECT_EQ(registry_.generation(), 2u);
  EXPECT_EQ(service.pair_cache_stats().size, 0);  // Flushed.

  // Same artifacts, new generation: identical margin, served as a miss.
  const Request after = HandleOk(service, line);
  EXPECT_EQ(after.Get("gen"), "2");
  EXPECT_EQ(after.Get("cache"), "miss");
  EXPECT_EQ(after.Get("margin"), before.Get("margin"));
}

TEST_F(ServiceTest, StatszReportsEndpointsAndCaches) {
  ScoringService service(&registry_);
  HandleOk(service, ScorePairLine((*fields_)[0], (*fields_)[1]));
  // statsz nests per-endpoint and cache objects, so assert on the raw text.
  const std::string statsz = service.HandleLine(R"({"type":"statsz"})");
  EXPECT_NE(statsz.find("\"ok\":true"), std::string::npos) << statsz;
  EXPECT_NE(statsz.find("\"score_pair\""), std::string::npos);
  EXPECT_NE(statsz.find("\"pair_cache\""), std::string::npos);
  EXPECT_NE(statsz.find("\"misses\":1"), std::string::npos);
  EXPECT_NE(statsz.find("\"gen\":1"), std::string::npos);
  EXPECT_NE(statsz.find("\"failed_reloads\":0"), std::string::npos);
}

// --- Hot-reload robustness (the faultinject suite) ---------------------

TEST_F(ServiceTest, InjectedLoadFaultKeepsPreviousGenerationServing) {
  ScoringService service(&registry_);
  const std::string line = ScorePairLine((*fields_)[0], (*fields_)[1]);
  const Request before = HandleOk(service, line);

  failpoint::Activate("serve.bundle.load", failpoint::Spec{});
  auto reload = ParseRequest(service.HandleLine(R"({"type":"reload","force":true})"));
  failpoint::DeactivateAll();
  ASSERT_TRUE(reload.ok());
  EXPECT_EQ(reload->Get("ok"), "false");
  EXPECT_EQ(reload->Get("gen"), "1");  // Still the old generation.
  EXPECT_EQ(registry_.failed_reload_count(), 1);
  EXPECT_EQ(registry_.reload_count(), 0);

  // Scoring continues on generation 1 with identical results.
  const Request after = HandleOk(service, line);
  EXPECT_EQ(after.Get("gen"), "1");
  EXPECT_EQ(after.Get("margin"), before.Get("margin"));
}

TEST_F(ServiceTest, CorruptReplacementArtifactIsRejected) {
  // Stage a private copy of the artifacts so the corruption cannot leak
  // into the other tests' shared bundle.
  const std::string dir = *dir_ + "/corrupt_reload";
  ASSERT_TRUE(CreateDirectories(dir).ok());
  BundlePaths paths = *paths_;
  auto copy = [](const std::string& from, const std::string& to) {
    std::ifstream in(from, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    ASSERT_TRUE(WriteFileAtomic(to, buffer.str()).ok());
  };
  copy(paths_->model_path, dir + "/model.txt");
  copy(paths_->stats_path, dir + "/stats.tsv");
  paths.model_path = dir + "/model.txt";
  paths.stats_path = dir + "/stats.tsv";

  BundleRegistry registry;
  ASSERT_TRUE(registry.LoadInitial(paths).ok());
  ScoringService service(&registry);
  const std::string line = ScorePairLine((*fields_)[0], (*fields_)[1]);
  const Request before = HandleOk(service, line);

  // A bad model push: flip bytes mid-file. The checksummed strict load must
  // reject it and the old generation keeps serving.
  {
    std::ifstream in(paths.model_path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string damaged = buffer.str();
    damaged[damaged.size() / 2] ^= 0x5a;
    std::ofstream out(paths.model_path, std::ios::binary | std::ios::trunc);
    out << damaged;
  }
  auto reload = ParseRequest(service.HandleLine(R"({"type":"reload"})"));
  ASSERT_TRUE(reload.ok());
  EXPECT_EQ(reload->Get("ok"), "false");
  EXPECT_NE(reload->Get("error").find("checksum"), std::string::npos)
      << reload->Get("error");
  EXPECT_EQ(registry.generation(), 1u);
  EXPECT_EQ(registry.failed_reload_count(), 1);

  const Request after = HandleOk(service, line);
  EXPECT_EQ(after.Get("gen"), "1");
  EXPECT_EQ(after.Get("margin"), before.Get("margin"));
}

TEST_F(ServiceTest, ReloadUnderSustainedLoadFailsNoRequests) {
  ScoringService service(&registry_);
  constexpr int kWorkers = 4;
  constexpr int kRequestsPerWorker = 200;
  std::atomic<int> failures{0};
  std::atomic<bool> reloading{true};

  // Reloader: continuous hot reloads, with an intermittent injected load
  // fault so both successful and failed swaps race the traffic.
  std::thread reloader([&] {
    failpoint::Spec flaky;
    flaky.mode = failpoint::Spec::Mode::kProbability;
    flaky.probability = 0.3;
    failpoint::Activate("serve.bundle.load", flaky);
    for (int i = 0; i < 25; ++i) {
      service.HandleLine(R"({"type":"reload","force":true})");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    failpoint::DeactivateAll();
    reloading.store(false);
  });

  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < kRequestsPerWorker || reloading.load(); ++i) {
        const std::string& a = (*fields_)[static_cast<size_t>(i + w) % fields_->size()];
        const std::string& b = (*fields_)[static_cast<size_t>(i + w + 1) % fields_->size()];
        auto response = ParseRequest(service.HandleLine(ScorePairLine(a, b)));
        if (!response.ok() || response->Get("ok") != "true") {
          failures.fetch_add(1);
        }
        if (i > 100000) break;  // Safety valve; never reached in practice.
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  reloader.join();

  // The hot-reload contract: zero failed scoring requests, no matter how
  // many generation swaps (or rejected swaps) happened mid-flight.
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(registry_.reload_count(), 0);
  EXPECT_GE(registry_.generation(), 2u);
}

TEST_F(ServiceTest, ConcurrentScoringAgreesAcrossGenerations) {
  // Margins must be bit-identical across generations of the same artifacts
  // and across worker contexts — no torn bundles, no registry divergence.
  ScoringService service(&registry_);
  const std::string line = ScorePairLine((*fields_)[5], (*fields_)[6]);
  const std::string expected(HandleOk(service, line).Get("margin"));

  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 6; ++w) {
    workers.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        auto response = ParseRequest(service.HandleLine(line));
        if (!response.ok() || response->Get("margin") != expected) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  std::thread reloader([&] {
    for (int i = 0; i < 5; ++i) service.HandleLine(R"({"type":"reload","force":true})");
  });
  for (std::thread& worker : workers) worker.join();
  reloader.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace serve
}  // namespace microbrowse
