// Copyright 2026 The Microbrowse Authors

#include "common/math_util.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace microbrowse {
namespace {

TEST(SigmoidTest, KnownValues) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(1.0), 0.7310585786300049, 1e-12);
  EXPECT_NEAR(Sigmoid(-1.0), 1.0 - Sigmoid(1.0), 1e-12);
}

TEST(SigmoidTest, ExtremesDoNotOverflow) {
  EXPECT_NEAR(Sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-1000.0), 0.0, 1e-12);
  EXPECT_TRUE(std::isfinite(Sigmoid(710.0)));
  EXPECT_TRUE(std::isfinite(Sigmoid(-710.0)));
}

TEST(SigmoidTest, SymmetryProperty) {
  for (double x : {0.1, 0.5, 2.0, 17.0, 33.0}) {
    EXPECT_NEAR(Sigmoid(x) + Sigmoid(-x), 1.0, 1e-12);
  }
}

TEST(Log1pExpTest, MatchesNaiveInSafeRange) {
  for (double x : {-10.0, -1.0, 0.0, 1.0, 10.0, 30.0}) {
    EXPECT_NEAR(Log1pExp(x), std::log1p(std::exp(x)), 1e-9);
  }
}

TEST(Log1pExpTest, LargeArgumentsAreLinear) {
  EXPECT_NEAR(Log1pExp(100.0), 100.0, 1e-9);
  EXPECT_NEAR(Log1pExp(-100.0), 0.0, 1e-9);
}

TEST(LogitTest, InvertsSigmoid) {
  for (double p : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    EXPECT_NEAR(Sigmoid(Logit(p)), p, 1e-9);
  }
}

TEST(LogitTest, ClampsBoundaries) {
  EXPECT_TRUE(std::isfinite(Logit(0.0)));
  EXPECT_TRUE(std::isfinite(Logit(1.0)));
  EXPECT_LT(Logit(0.0), 0.0);
  EXPECT_GT(Logit(1.0), 0.0);
}

TEST(LogLossTest, PerfectAndWorstPredictions) {
  EXPECT_NEAR(LogLoss(1.0, 1.0), 0.0, 1e-9);
  EXPECT_NEAR(LogLoss(0.0, 0.0), 0.0, 1e-9);
  EXPECT_GT(LogLoss(1.0, 0.0), 20.0);  // Clamped, large but finite.
  EXPECT_TRUE(std::isfinite(LogLoss(1.0, 0.0)));
}

TEST(LogLossTest, HalfProbabilityIsLog2) {
  EXPECT_NEAR(LogLoss(1.0, 0.5), std::log(2.0), 1e-12);
  EXPECT_NEAR(LogLoss(0.0, 0.5), std::log(2.0), 1e-12);
}

TEST(LogSumExpTest, EmptyIsNegativeInfinity) {
  EXPECT_EQ(LogSumExp({}), -std::numeric_limits<double>::infinity());
}

TEST(LogSumExpTest, SingleValue) {
  EXPECT_NEAR(LogSumExp({3.5}), 3.5, 1e-12);
}

TEST(LogSumExpTest, MatchesDirectComputation) {
  EXPECT_NEAR(LogSumExp({0.0, 0.0}), std::log(2.0), 1e-12);
  EXPECT_NEAR(LogSumExp({1.0, 2.0, 3.0}),
              std::log(std::exp(1.0) + std::exp(2.0) + std::exp(3.0)), 1e-9);
}

TEST(LogSumExpTest, StableForLargeInputs) {
  const double result = LogSumExp({1000.0, 1000.0});
  EXPECT_NEAR(result, 1000.0 + std::log(2.0), 1e-9);
}

TEST(StdNormalCdfTest, KnownQuantiles) {
  EXPECT_NEAR(StdNormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(StdNormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(StdNormalCdf(-1.96), 0.025, 1e-3);
}

TEST(OnlineStatsTest, EmptyStats) {
  OnlineStats stats;
  EXPECT_EQ(stats.count(), 0);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(OnlineStatsTest, SingleObservation) {
  OnlineStats stats;
  stats.Add(5.0);
  EXPECT_EQ(stats.count(), 1);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 5.0);
  EXPECT_EQ(stats.max(), 5.0);
}

TEST(OnlineStatsTest, MatchesClosedForm) {
  OnlineStats stats;
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  for (double x : xs) stats.Add(x);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
  EXPECT_NEAR(stats.variance(), 2.5, 1e-12);  // Sample variance.
  EXPECT_NEAR(stats.stddev(), std::sqrt(2.5), 1e-12);
  EXPECT_EQ(stats.min(), 1.0);
  EXPECT_EQ(stats.max(), 5.0);
}

TEST(TwoProportionZTest, DegenerateInputs) {
  EXPECT_EQ(TwoProportionZTest(0, 0, 5, 10).p_value, 1.0);
  EXPECT_EQ(TwoProportionZTest(5, 10, 0, 0).p_value, 1.0);
  // Pooled variance zero: all successes.
  EXPECT_EQ(TwoProportionZTest(10, 10, 10, 10).p_value, 1.0);
}

TEST(TwoProportionZTest, EqualProportionsAreInsignificant) {
  const auto test = TwoProportionZTest(50, 100, 50, 100);
  EXPECT_NEAR(test.z, 0.0, 1e-12);
  EXPECT_NEAR(test.p_value, 1.0, 1e-12);
}

TEST(TwoProportionZTest, LargeDifferenceIsSignificant) {
  const auto test = TwoProportionZTest(80, 100, 20, 100);
  EXPECT_GT(test.z, 5.0);
  EXPECT_LT(test.p_value, 1e-6);
}

TEST(TwoProportionZTest, SignFollowsDirection) {
  EXPECT_GT(TwoProportionZTest(60, 100, 40, 100).z, 0.0);
  EXPECT_LT(TwoProportionZTest(40, 100, 60, 100).z, 0.0);
}

TEST(TwoProportionZTest, MoreDataMoreSignificance) {
  const auto small = TwoProportionZTest(55, 100, 45, 100);
  const auto large = TwoProportionZTest(5500, 10000, 4500, 10000);
  EXPECT_LT(large.p_value, small.p_value);
}

TEST(WilsonLowerBoundTest, Properties) {
  EXPECT_EQ(WilsonLowerBound(0, 0), 0.0);
  EXPECT_EQ(WilsonLowerBound(0, 100), 0.0);
  // Lower bound is below the raw proportion.
  EXPECT_LT(WilsonLowerBound(50, 100), 0.5);
  // And converges toward it with more data.
  EXPECT_GT(WilsonLowerBound(5000, 10000), WilsonLowerBound(50, 100));
  EXPECT_GT(WilsonLowerBound(90, 100), WilsonLowerBound(10, 100));
}

}  // namespace
}  // namespace microbrowse
