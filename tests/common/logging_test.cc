// Copyright 2026 The Microbrowse Authors

#include "common/logging.h"

#include <gtest/gtest.h>

namespace microbrowse {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, LevelsAreOrdered) {
  EXPECT_LT(static_cast<int>(LogLevel::kDebug), static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo), static_cast<int>(LogLevel::kWarning));
  EXPECT_LT(static_cast<int>(LogLevel::kWarning), static_cast<int>(LogLevel::kError));
}

TEST(LoggingTest, SuppressedStatementsDoNotEvaluateEagerly) {
  // The MB_LOG macro must not emit (or crash) below the active level; the
  // stream expression still evaluates, so keep it side-effect-free.
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  MB_LOG(kDebug) << "invisible " << 42;
  MB_LOG(kInfo) << "also invisible";
  SetLogLevel(original);
  SUCCEED();
}

TEST(LoggingTest, EmittedStatementsDoNotCrash) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  MB_LOG(kDebug) << "debug message " << 1;
  MB_LOG(kWarning) << "warning message " << 2.5;
  MB_LOG(kError) << "error message " << "text";
  SetLogLevel(original);
  SUCCEED();
}

TEST(CheckTest, PassingCheckIsANoop) {
  MB_CHECK(1 + 1 == 2) << "never shown";
  SUCCEED();
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH({ MB_CHECK(false) << "boom"; }, "CHECK FAILED");
}

}  // namespace
}  // namespace microbrowse
