// Copyright 2026 The Microbrowse Authors
//
// Deadline semantics: monotonic, immune to wall-clock steps, with the
// already-expired and infinite edge cases the serve path leans on.

#include "common/deadline.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>

namespace microbrowse {
namespace {

TEST(DeadlineTest, DefaultAndInfiniteNeverExpire) {
  const Deadline default_constructed;
  EXPECT_TRUE(default_constructed.infinite());
  EXPECT_FALSE(default_constructed.expired());
  EXPECT_EQ(default_constructed.remaining_millis(), INT64_MAX);

  const Deadline infinite = Deadline::Infinite();
  EXPECT_TRUE(infinite.infinite());
  EXPECT_FALSE(infinite.expired());
}

TEST(DeadlineTest, NonPositiveBudgetIsAlreadyExpired) {
  EXPECT_TRUE(Deadline::AfterMillis(0).expired());
  EXPECT_TRUE(Deadline::AfterMillis(-5).expired());
  EXPECT_EQ(Deadline::AfterMillis(0).remaining_millis(), 0);
  EXPECT_FALSE(Deadline::AfterMillis(0).infinite());
}

TEST(DeadlineTest, FutureDeadlineCountsDownAndExpires) {
  const Deadline deadline = Deadline::AfterMillis(40);
  EXPECT_FALSE(deadline.infinite());
  EXPECT_FALSE(deadline.expired());
  const int64_t remaining = deadline.remaining_millis();
  EXPECT_GT(remaining, 0);
  EXPECT_LE(remaining, 40);

  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_TRUE(deadline.expired());
  EXPECT_EQ(deadline.remaining_millis(), 0);
}

TEST(DeadlineTest, RemainingNeverGoesNegative) {
  const Deadline deadline = Deadline::AfterMillis(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(deadline.remaining_millis(), 0);
}

TEST(DeadlineTest, EarlierPicksTheSoonerDeadline) {
  const Deadline infinite = Deadline::Infinite();
  const Deadline near = Deadline::AfterMillis(50);
  const Deadline far = Deadline::AfterMillis(60'000);

  EXPECT_FALSE(Deadline::Earlier(infinite, near).infinite());
  EXPECT_FALSE(Deadline::Earlier(near, infinite).infinite());
  EXPECT_TRUE(Deadline::Earlier(infinite, infinite).infinite());

  const Deadline sooner = Deadline::Earlier(near, far);
  EXPECT_LE(sooner.remaining_millis(), 50);
}

}  // namespace
}  // namespace microbrowse
