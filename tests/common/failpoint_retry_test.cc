// Copyright 2026 The Microbrowse Authors
//
// Tests for the fault-injection framework (common/failpoint.h), the retry
// wrapper (common/retry.h) and the thread pool's error propagation.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <vector>

#include "common/failpoint.h"
#include "common/retry.h"
#include "common/thread_pool.h"

namespace microbrowse {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::DeactivateAll(); }
  void TearDown() override { failpoint::DeactivateAll(); }
};

TEST_F(FailpointTest, InactivePointIsFreeAndReturnsOk) {
  EXPECT_FALSE(failpoint::internal::AnyActive());
  EXPECT_TRUE(failpoint::Check("test.nothing").ok());
  EXPECT_FALSE(failpoint::IsActive("test.nothing"));
}

TEST_F(FailpointTest, AlwaysModeFiresEveryHit) {
  failpoint::Activate("test.always", failpoint::Spec{});
  EXPECT_TRUE(failpoint::internal::AnyActive());
  for (int i = 0; i < 3; ++i) {
    const Status status = failpoint::Check("test.always");
    EXPECT_EQ(status.code(), StatusCode::kIOError);
    EXPECT_NE(status.message().find("test.always"), std::string::npos);
  }
  EXPECT_EQ(failpoint::HitCount("test.always"), 3);
  EXPECT_EQ(failpoint::FireCount("test.always"), 3);
}

TEST_F(FailpointTest, NeverModeOnlyCountsHits) {
  failpoint::Spec spec;
  spec.mode = failpoint::Spec::Mode::kNever;
  failpoint::Activate("test.count", spec);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(failpoint::Check("test.count").ok());
  EXPECT_EQ(failpoint::HitCount("test.count"), 5);
  EXPECT_EQ(failpoint::FireCount("test.count"), 0);
}

TEST_F(FailpointTest, NthModeFiresExactlyOnce) {
  failpoint::Spec spec;
  spec.mode = failpoint::Spec::Mode::kNth;
  spec.nth = 3;
  failpoint::Activate("test.nth", spec);
  EXPECT_TRUE(failpoint::Check("test.nth").ok());
  EXPECT_TRUE(failpoint::Check("test.nth").ok());
  EXPECT_FALSE(failpoint::Check("test.nth").ok());  // 3rd hit fires.
  EXPECT_TRUE(failpoint::Check("test.nth").ok());   // Once only.
  EXPECT_EQ(failpoint::FireCount("test.nth"), 1);
}

TEST_F(FailpointTest, ProbabilityIsDeterministicPerName) {
  failpoint::Spec spec;
  spec.mode = failpoint::Spec::Mode::kProbability;
  spec.probability = 0.5;
  failpoint::Activate("test.prob", spec);
  std::vector<bool> first;
  for (int i = 0; i < 64; ++i) first.push_back(failpoint::Check("test.prob").ok());
  // Re-arming resets the deterministic RNG: same sequence again.
  failpoint::Activate("test.prob", spec);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(failpoint::Check("test.prob").ok(), first[i]);
  const int64_t fired = failpoint::FireCount("test.prob");
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 64);
}

TEST_F(FailpointTest, ParseSpecGrammar) {
  auto always = failpoint::ParseSpec("always");
  ASSERT_TRUE(always.ok());
  EXPECT_EQ(always->mode, failpoint::Spec::Mode::kAlways);

  auto off = failpoint::ParseSpec("off");
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off->mode, failpoint::Spec::Mode::kNever);

  auto prob = failpoint::ParseSpec("p:0.25");
  ASSERT_TRUE(prob.ok());
  EXPECT_EQ(prob->mode, failpoint::Spec::Mode::kProbability);
  EXPECT_DOUBLE_EQ(prob->probability, 0.25);

  auto nth = failpoint::ParseSpec("nth:7");
  ASSERT_TRUE(nth.ok());
  EXPECT_EQ(nth->mode, failpoint::Spec::Mode::kNth);
  EXPECT_EQ(nth->nth, 7);

  auto bare_float = failpoint::ParseSpec("0.5");
  ASSERT_TRUE(bare_float.ok());
  EXPECT_EQ(bare_float->mode, failpoint::Spec::Mode::kProbability);

  auto bare_int = failpoint::ParseSpec("4");
  ASSERT_TRUE(bare_int.ok());
  EXPECT_EQ(bare_int->mode, failpoint::Spec::Mode::kNth);

  EXPECT_FALSE(failpoint::ParseSpec("garbage").ok());
  EXPECT_FALSE(failpoint::ParseSpec("p:high").ok());
  EXPECT_FALSE(failpoint::ParseSpec("").ok());

  auto delay = failpoint::ParseSpec("delay:25");
  ASSERT_TRUE(delay.ok());
  EXPECT_EQ(delay->mode, failpoint::Spec::Mode::kDelay);
  EXPECT_EQ(delay->delay_ms, 25);
  EXPECT_FALSE(failpoint::ParseSpec("delay:").ok());
  EXPECT_FALSE(failpoint::ParseSpec("delay:-5").ok());
  EXPECT_FALSE(failpoint::ParseSpec("delay:soon").ok());
}

TEST_F(FailpointTest, DelayModeInjectsLatencyNotErrors) {
  failpoint::Spec spec;
  spec.mode = failpoint::Spec::Mode::kDelay;
  spec.delay_ms = 30;
  failpoint::Activate("test.delay", spec);
  const auto start = std::chrono::steady_clock::now();
  // Delay hits return OK — callers proceed, just later. The macro
  // therefore never aborts the guarded function.
  EXPECT_TRUE(failpoint::Check("test.delay").ok());
  EXPECT_TRUE(failpoint::Check("test.delay").ok());
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 55);  // Two hits of ~30 ms (scheduler slack).
  EXPECT_EQ(failpoint::FireCount("test.delay"), 2);
}

TEST_F(FailpointTest, ActivateFromListArmsEveryEntry) {
  ASSERT_TRUE(failpoint::ActivateFromList("a.one=always,b.two=nth:2,c.three=off").ok());
  EXPECT_TRUE(failpoint::IsActive("a.one"));
  EXPECT_TRUE(failpoint::IsActive("b.two"));
  EXPECT_TRUE(failpoint::IsActive("c.three"));
  EXPECT_EQ(failpoint::ActiveNames().size(), 3u);
}

TEST_F(FailpointTest, ActivateFromListRejectsMalformedEntries) {
  EXPECT_FALSE(failpoint::ActivateFromList("no_equals_sign").ok());
  EXPECT_FALSE(failpoint::ActivateFromList("x.y=notaspec").ok());
}

Status GuardedByFailpoint() {
  MB_FAILPOINT("test.macro");
  return Status::OK();
}

TEST_F(FailpointTest, MacroPropagatesInjectedError) {
  EXPECT_TRUE(GuardedByFailpoint().ok());
  failpoint::Activate("test.macro", failpoint::Spec{});
  EXPECT_EQ(GuardedByFailpoint().code(), StatusCode::kIOError);
  failpoint::Deactivate("test.macro");
  EXPECT_TRUE(GuardedByFailpoint().ok());
}

// --- Retry with exponential backoff

TEST(RetryTest, IOErrorIsTransientOthersAreNot) {
  EXPECT_TRUE(IsTransient(Status::IOError("disk hiccup")));
  EXPECT_TRUE(IsTransient(Status::Unavailable("server draining")));
  EXPECT_FALSE(IsTransient(Status::InvalidArgument("bad input")));
  EXPECT_FALSE(IsTransient(Status::Internal("bug")));
  EXPECT_FALSE(IsTransient(Status::DeadlineExceeded("budget spent")));
  EXPECT_FALSE(IsTransient(Status::OK()));
}

TEST(RetryTest, BackoffGrowsExponentiallyAndCaps) {
  RetryOptions options;
  options.initial_backoff_ms = 10;
  options.backoff_multiplier = 2.0;
  options.max_backoff_ms = 35;
  EXPECT_EQ(BackoffDelayMs(options, 1), 10);
  EXPECT_EQ(BackoffDelayMs(options, 2), 20);
  EXPECT_EQ(BackoffDelayMs(options, 3), 35);  // Capped.
}

TEST(RetryTest, ZeroJitterKeepsTheDeterministicSchedule) {
  RetryOptions options;
  options.initial_backoff_ms = 10;
  options.backoff_multiplier = 2.0;
  options.max_backoff_ms = 1000;
  // jitter defaults to 0: the artifact-write call sites keep their exact
  // historical backoff schedule.
  for (int retry = 1; retry <= 5; ++retry) {
    EXPECT_EQ(JitteredBackoffDelayMs(options, retry), BackoffDelayMs(options, retry));
  }
}

TEST(RetryTest, FullJitterStaysWithinScheduleAndIsSeedDeterministic) {
  RetryOptions options;
  options.initial_backoff_ms = 100;
  options.backoff_multiplier = 2.0;
  options.max_backoff_ms = 10'000;
  options.jitter = 1.0;
  Rng rng(7);
  options.rng = &rng;
  std::vector<int> first;
  for (int retry = 1; retry <= 8; ++retry) {
    const int delay = JitteredBackoffDelayMs(options, retry);
    EXPECT_GE(delay, 0);
    EXPECT_LE(delay, BackoffDelayMs(options, retry));
    first.push_back(delay);
  }
  // Same seed, same schedule: tests of retrying components stay
  // reproducible by injecting a seeded Rng.
  Rng replay(7);
  options.rng = &replay;
  for (int retry = 1; retry <= 8; ++retry) {
    EXPECT_EQ(JitteredBackoffDelayMs(options, retry), first[retry - 1]);
  }
}

TEST(RetryTest, PartialJitterFloorsTheFixedFraction) {
  RetryOptions options;
  options.initial_backoff_ms = 100;
  options.backoff_multiplier = 1.0;
  options.max_backoff_ms = 100;
  options.jitter = 0.5;  // Half fixed, half uniform: delay in [50, 100].
  Rng rng(11);
  options.rng = &rng;
  for (int retry = 1; retry <= 16; ++retry) {
    const int delay = JitteredBackoffDelayMs(options, retry);
    EXPECT_GE(delay, 50);
    EXPECT_LE(delay, 100);
  }
}

RetryOptions FastRetry(int attempts) {
  RetryOptions options;
  options.max_attempts = attempts;
  options.initial_backoff_ms = 0;
  return options;
}

TEST(RetryTest, SucceedsAfterTransientFailures) {
  int calls = 0;
  const Status status = RetryWithBackoff(
      [&calls]() {
        ++calls;
        return calls < 3 ? Status::IOError("transient") : Status::OK();
      },
      FastRetry(5));
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, GivesUpAfterMaxAttempts) {
  int calls = 0;
  const Status status = RetryWithBackoff(
      [&calls]() {
        ++calls;
        return Status::IOError("still broken");
      },
      FastRetry(3));
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, NonTransientFailsImmediately) {
  int calls = 0;
  const Status status = RetryWithBackoff(
      [&calls]() {
        ++calls;
        return Status::InvalidArgument("deterministic");
      },
      FastRetry(5));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, ResultVariantRetries) {
  int calls = 0;
  const Result<int> result = RetryWithBackoff<int>(
      [&calls]() -> Result<int> {
        ++calls;
        if (calls < 2) return Status::IOError("transient");
        return 42;
      },
      FastRetry(3));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(calls, 2);
}

// --- Thread pool error propagation

TEST(ThreadPoolErrorTest, FailingTaskSurfacesThroughWait) {
  ThreadPool pool(2);
  pool.SubmitFallible([] { return Status::IOError("task failed"); });
  const Status status = pool.Wait();
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  // The failure is cleared: the pool is reusable.
  pool.SubmitFallible([] { return Status::OK(); });
  EXPECT_TRUE(pool.Wait().ok());
}

TEST(ThreadPoolErrorTest, ExceptionBecomesInternalStatusNotAbort) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  const Status status = pool.Wait();
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("boom"), std::string::npos);
}

TEST(ThreadPoolErrorTest, QueuedFallibleTasksDrainAfterFailure) {
  // One worker: the failing task is guaranteed to run before the queued
  // ones, which must then be skipped.
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  pool.SubmitFallible([] { return Status::IOError("first fails"); });
  for (int i = 0; i < 8; ++i) {
    pool.SubmitFallible([&ran] {
      ++ran;
      return Status::OK();
    });
  }
  EXPECT_EQ(pool.Wait().code(), StatusCode::kIOError);
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPoolErrorTest, InfallibleTasksStillRunAfterFailure) {
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  pool.SubmitFallible([] { return Status::IOError("fails"); });
  pool.Submit([&ran] { ++ran; });
  EXPECT_FALSE(pool.Wait().ok());
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolErrorTest, ParallelForFalliblePropagatesFirstFailure) {
  ThreadPool pool(4);
  const Status status = pool.ParallelForFallible(64, [](size_t i) {
    return i == 17 ? Status::InvalidArgument("index 17") : Status::OK();
  });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(ThreadPoolErrorTest, TaskFailpointInjectsIntoPool) {
  failpoint::DeactivateAll();
  failpoint::Spec spec;
  spec.mode = failpoint::Spec::Mode::kNth;
  spec.nth = 2;
  failpoint::Activate("threadpool.task", spec);
  ThreadPool pool(1);
  const Status status = pool.ParallelFor(4, [](size_t) {});
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  failpoint::DeactivateAll();
}

}  // namespace
}  // namespace microbrowse
