// Copyright 2026 The Microbrowse Authors
//
// MetricRegistry behaviour: stable pointers, kind-clash handling, sorted
// snapshots, Prometheus text rendering and concurrent first-registration
// over the lock shards.

#include "common/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

namespace microbrowse {
namespace {

TEST(MetricsTest, CounterPointerIsStableAndAccumulates) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("mb.test.requests");
  EXPECT_EQ(counter->Value(), 0);
  counter->Increment();
  counter->Increment(41);
  EXPECT_EQ(counter->Value(), 42);
  // Same name -> the very same metric object.
  EXPECT_EQ(registry.GetCounter("mb.test.requests"), counter);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsTest, GaugeIsLastWriteWins) {
  MetricRegistry registry;
  Gauge* gauge = registry.GetGauge("mb.test.depth");
  gauge->Set(3.5);
  gauge->Set(-1.25);
  EXPECT_EQ(gauge->Value(), -1.25);
}

TEST(MetricsTest, KindClashReturnsDetachedDummy) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("mb.test.name");
  counter->Increment(7);
  // Asking for the same name as a different kind must not crash and must
  // not disturb the original metric.
  Gauge* gauge = registry.GetGauge("mb.test.name");
  ASSERT_NE(gauge, nullptr);
  gauge->Set(99.0);
  ShardedHistogram* histogram = registry.GetHistogram("mb.test.name");
  ASSERT_NE(histogram, nullptr);
  histogram->Record(1.0);
  EXPECT_EQ(counter->Value(), 7);
  EXPECT_EQ(registry.size(), 1u);
  auto entries = registry.Snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].kind, MetricRegistry::Kind::kCounter);
}

TEST(MetricsTest, SnapshotIsSortedByName) {
  MetricRegistry registry;
  registry.GetCounter("mb.z.last");
  registry.GetGauge("mb.a.first");
  registry.GetHistogram("mb.m.middle");
  const auto entries = registry.Snapshot();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].name, "mb.a.first");
  EXPECT_EQ(entries[1].name, "mb.m.middle");
  EXPECT_EQ(entries[2].name, "mb.z.last");
}

TEST(MetricsTest, PrometheusNameSanitizesCharset) {
  EXPECT_EQ(PrometheusName("mb.serve.score_pair.requests"),
            "mb_serve_score_pair_requests");
  EXPECT_EQ(PrometheusName("weird-name with spaces"), "weird_name_with_spaces");
  EXPECT_EQ(PrometheusName("9starts_with_digit"), "_9starts_with_digit");
  EXPECT_EQ(PrometheusName(""), "_");
}

TEST(MetricsTest, RenderPrometheusTextCoversAllKinds) {
  MetricRegistry registry;
  registry.GetCounter("mb.test.requests")->Increment(5);
  registry.GetGauge("mb.test.temperature")->Set(2.5);
  ShardedHistogram* histogram = registry.GetHistogram("mb.test.latency");
  histogram->Record(0.001);
  histogram->Record(0.002);
  const std::string text = registry.RenderPrometheusText();
  EXPECT_NE(text.find("# TYPE mb_test_requests counter\nmb_test_requests 5\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE mb_test_temperature gauge\nmb_test_temperature 2.5\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE mb_test_latency summary\n"), std::string::npos) << text;
  EXPECT_NE(text.find("mb_test_latency{quantile=\"0.5\"}"), std::string::npos) << text;
  EXPECT_NE(text.find("mb_test_latency{quantile=\"0.95\"}"), std::string::npos) << text;
  EXPECT_NE(text.find("mb_test_latency{quantile=\"0.99\"}"), std::string::npos) << text;
  EXPECT_NE(text.find("mb_test_latency_sum "), std::string::npos) << text;
  EXPECT_NE(text.find("mb_test_latency_count 2\n"), std::string::npos) << text;
  // Every sample line is "name[{labels}] value" — two tokens.
  size_t line_start = 0;
  while (line_start < text.size()) {
    size_t line_end = text.find('\n', line_start);
    if (line_end == std::string::npos) line_end = text.size();
    const std::string line = text.substr(line_start, line_end - line_start);
    if (!line.empty() && line[0] != '#') {
      EXPECT_EQ(std::count(line.begin(), line.end(), ' '), 1) << line;
    }
    line_start = line_end + 1;
  }
}

TEST(MetricsTest, ResetAllZeroesEveryKindButKeepsPointersValid) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("mb.test.count");
  Gauge* gauge = registry.GetGauge("mb.test.gauge");
  ShardedHistogram* histogram = registry.GetHistogram("mb.test.histogram");
  counter->Increment(3);
  gauge->Set(4.0);
  histogram->Record(1.0);
  registry.ResetAllForTest();
  EXPECT_EQ(counter->Value(), 0);
  EXPECT_EQ(gauge->Value(), 0.0);
  EXPECT_EQ(histogram->Count(), 0);
  counter->Increment();
  EXPECT_EQ(counter->Value(), 1);
}

TEST(MetricsTest, PreregisterPipelineMetricsExportsTrainCountersAtZero) {
  MetricRegistry registry;
  PreregisterPipelineMetrics(&registry);
  EXPECT_GE(registry.size(), 13u);
  const std::string text = registry.RenderPrometheusText();
  EXPECT_NE(text.find("mb_train_epochs 0\n"), std::string::npos) << text;
  EXPECT_NE(text.find("mb_cv_folds_trained 0\n"), std::string::npos) << text;
  EXPECT_NE(text.find("mb_corpus_adgroups_generated 0\n"), std::string::npos) << text;
  EXPECT_NE(text.find("mb_stats_features 0\n"), std::string::npos) << text;
  EXPECT_NE(text.find("mb_cv_fold_seconds_count 0\n"), std::string::npos) << text;
  // Preregistration is idempotent.
  const size_t before = registry.size();
  PreregisterPipelineMetrics(&registry);
  EXPECT_EQ(registry.size(), before);
}

TEST(MetricsTest, ConcurrentFirstRegistrationYieldsOneMetricPerName) {
  MetricRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kNames = 32;
  std::vector<std::vector<Counter*>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &seen, t] {
      for (int n = 0; n < kNames; ++n) {
        Counter* counter = registry.GetCounter("mb.race." + std::to_string(n));
        counter->Increment();
        seen[t].push_back(counter);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.size(), static_cast<size_t>(kNames));
  for (int n = 0; n < kNames; ++n) {
    // All threads resolved the same pointer, and every increment landed.
    for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t][n], seen[0][n]);
    EXPECT_EQ(seen[0][n]->Value(), kThreads);
  }
}

TEST(MetricsTest, GlobalRegistryIsASingleton) {
  EXPECT_EQ(&MetricRegistry::Global(), &MetricRegistry::Global());
}

}  // namespace
}  // namespace microbrowse
