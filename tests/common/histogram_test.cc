// Copyright 2026 The Microbrowse Authors
//
// Histogram merge correctness: a ShardedHistogram's merged snapshot must
// equal the snapshot of a single Histogram fed the same samples — the
// Accumulator path (memoized bucket bounds, shard merging) is an exact
// refactor of single-histogram snapshotting, not an approximation.

#include "common/histogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "common/random.h"

namespace microbrowse {
namespace {

TEST(HistogramTest, BucketBoundsMemoizedAndMonotonic) {
  const auto& bounds = Histogram::BucketBounds();
  // Memoized: every call returns the same table instance.
  EXPECT_EQ(&bounds, &Histogram::BucketBounds());
  // Bucket 0 is the catch-all for values <= kFirstBucket (lower edge 0);
  // bucket 1 starts the log grid at kFirstBucket.
  EXPECT_DOUBLE_EQ(bounds[0], 0.0);
  EXPECT_DOUBLE_EQ(bounds[1], 1e-6);
  for (int i = 1; i < Histogram::kNumBuckets; ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]) << "bucket " << i;
  }
}

TEST(HistogramTest, MergedShardSnapshotEqualsSingleHistogramTotals) {
  Rng rng(17);
  Histogram single;
  ShardedHistogram sharded(4);
  for (int i = 0; i < 20000; ++i) {
    // Spread samples over many decades, including the clamped extremes.
    const double value = std::pow(10.0, rng.Uniform(-8.0, 5.0));
    single.Record(value);
    sharded.Record(value);
  }
  const HistogramSnapshot expected = single.Snapshot();
  const HistogramSnapshot merged = sharded.Snapshot();
  EXPECT_EQ(merged.count, expected.count);
  EXPECT_DOUBLE_EQ(merged.sum, expected.sum);
  EXPECT_EQ(merged.min, expected.min);
  EXPECT_EQ(merged.max, expected.max);
  EXPECT_EQ(merged.p50, expected.p50);
  EXPECT_EQ(merged.p95, expected.p95);
  EXPECT_EQ(merged.p99, expected.p99);
}

TEST(HistogramTest, MergedShardSnapshotEqualsSingleUnderConcurrentRecorders) {
  // Same totals property, but with every shard populated from its own
  // thread (the sticky thread->shard assignment is exercised for real).
  ShardedHistogram sharded(4);
  Histogram single;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::vector<double>> samples(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    Rng rng(100 + t);
    for (int i = 0; i < kPerThread; ++i) {
      samples[t].push_back(rng.Uniform(1e-5, 10.0));
    }
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sharded, &samples, t] {
      for (double value : samples[t]) sharded.Record(value);
    });
  }
  for (auto& thread : threads) thread.join();
  for (const auto& batch : samples) {
    for (double value : batch) single.Record(value);
  }
  const HistogramSnapshot expected = single.Snapshot();
  const HistogramSnapshot merged = sharded.Snapshot();
  EXPECT_EQ(merged.count, expected.count);
  // Sum order differs across shards; compare to double rounding only.
  EXPECT_NEAR(merged.sum, expected.sum, 1e-9 * std::fabs(expected.sum));
  EXPECT_EQ(merged.min, expected.min);
  EXPECT_EQ(merged.max, expected.max);
  // Quantiles come from integer bucket counts, so they are exact.
  EXPECT_EQ(merged.p50, expected.p50);
  EXPECT_EQ(merged.p95, expected.p95);
  EXPECT_EQ(merged.p99, expected.p99);
}

TEST(HistogramTest, EmptyShardedSnapshotIsZero) {
  ShardedHistogram sharded(3);
  const HistogramSnapshot snapshot = sharded.Snapshot();
  EXPECT_EQ(snapshot.count, 0);
  EXPECT_EQ(snapshot.sum, 0.0);
  EXPECT_EQ(snapshot.min, 0.0);
  EXPECT_EQ(snapshot.max, 0.0);
}

TEST(HistogramTest, ShardedResetClearsAllShards) {
  ShardedHistogram sharded(2);
  for (int i = 0; i < 100; ++i) sharded.Record(0.5);
  EXPECT_EQ(sharded.Count(), 100);
  sharded.Reset();
  EXPECT_EQ(sharded.Count(), 0);
  EXPECT_EQ(sharded.Snapshot().count, 0);
}

}  // namespace
}  // namespace microbrowse
