// Copyright 2026 The Microbrowse Authors
//
// Tests for the smaller common utilities: hashing, CSV output, the table
// printer, timers and the thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "common/csv.h"
#include "common/hash.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace microbrowse {
namespace {

// --- hash.h

TEST(HashTest, Fnv1aIsDeterministicAndSpreads) {
  EXPECT_EQ(Fnv1a64("abc"), Fnv1a64("abc"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
  EXPECT_NE(Fnv1a64(""), Fnv1a64("a"));
}

TEST(HashTest, Mix64ChangesInput) {
  std::set<uint64_t> outputs;
  for (uint64_t x = 0; x < 100; ++x) outputs.insert(Mix64(x));
  EXPECT_EQ(outputs.size(), 100u);
}

TEST(HashTest, HashCombineOrderMatters) {
  const uint64_t ab = HashCombine(HashCombine(0, std::string_view("a")), std::string_view("b"));
  const uint64_t ba = HashCombine(HashCombine(0, std::string_view("b")), std::string_view("a"));
  EXPECT_NE(ab, ba);
}

TEST(HashTest, HashCombineIntegers) {
  EXPECT_NE(HashCombine(1, uint64_t{2}), HashCombine(2, uint64_t{1}));
  EXPECT_EQ(HashCombine(7, uint64_t{9}), HashCombine(7, uint64_t{9}));
}

// --- csv.h

TEST(CsvEscapeTest, PlainFieldUntouched) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape(""), "");
}

TEST(CsvEscapeTest, QuotesSpecialCharacters) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvWriterTest, WritesRowsToFile) {
  const std::string path = ::testing::TempDir() + "/csv_writer_test.csv";
  CsvWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  ASSERT_TRUE(writer.WriteRow({"model", "f1"}).ok());
  ASSERT_TRUE(writer.WriteRow({"M1", "0.570"}).ok());
  ASSERT_TRUE(writer.WriteRow({"with,comma", "x"}).ok());
  ASSERT_TRUE(writer.Close().ok());

  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "model,f1");
  std::getline(in, line);
  EXPECT_EQ(line, "M1,0.570");
  std::getline(in, line);
  EXPECT_EQ(line, "\"with,comma\",x");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, WriteWithoutOpenFails) {
  CsvWriter writer;
  EXPECT_EQ(writer.WriteRow({"x"}).code(), StatusCode::kFailedPrecondition);
}

TEST(CsvWriterTest, DoubleOpenFails) {
  const std::string path = ::testing::TempDir() + "/csv_double_open.csv";
  CsvWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  EXPECT_EQ(writer.Open(path).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(writer.Close().ok());
  std::remove(path.c_str());
}

TEST(CsvWriterTest, CloseWithoutOpenIsOk) {
  CsvWriter writer;
  EXPECT_TRUE(writer.Close().ok());
}

// --- table_printer.h

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table;
  table.SetHeader({"Feature", "F"});
  table.AddRow({"M1", "0.570"});
  table.AddRow({"M6: everything", "0.712"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("Feature"), std::string::npos);
  EXPECT_NE(out.find("M6: everything"), std::string::npos);
  // Right-aligned metric column: every data line ends with the value.
  EXPECT_NE(out.find("0.570"), std::string::npos);
}

TEST(TablePrinterTest, TitleIsPrinted) {
  TablePrinter table("My Title");
  table.SetHeader({"A"});
  table.AddRow({"x"});
  EXPECT_EQ(table.ToString().rfind("My Title", 0), 0u);
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter table;
  table.SetHeader({"A", "B", "C"});
  table.AddRow({"only-one"});
  EXPECT_NE(table.ToString().find("only-one"), std::string::npos);
}

// --- timer.h

TEST(WallTimerTest, ElapsedIsMonotone) {
  WallTimer timer;
  const double first = timer.ElapsedSeconds();
  const double second = timer.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(second, first);
  EXPECT_GE(timer.ElapsedMillis(), second * 1e3);
}

TEST(WallTimerTest, ResetRestarts) {
  WallTimer timer;
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), 1.0);
}

// --- thread_pool.h

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(64, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // Must not deadlock.
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 10);
}

}  // namespace
}  // namespace microbrowse
