// Copyright 2026 The Microbrowse Authors
//
// Trace collection and JSON emission: span nesting (parent/depth), the
// disabled fast path, cross-thread collection, and the structure of the
// written trace file. The trace's span objects are flat JSON, so the
// serve protocol parser doubles as the validator here.

#include "common/trace.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.h"

namespace microbrowse {
namespace {

std::string TracePath(const char* name) {
  return ::testing::TempDir() + "/" + name + "_" + std::to_string(::getpid()) + ".json";
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Parses the trace file into one Request per span, validating the
/// envelope along the way.
std::vector<serve::Request> ParseTrace(const std::string& text, int64_t* span_count) {
  const size_t spans_begin = text.find("\"spans\":[");
  EXPECT_NE(text.find("{\"trace_version\":1,"), std::string::npos) << text;
  EXPECT_NE(spans_begin, std::string::npos) << text;
  const size_t count_begin = text.find("\"span_count\":");
  EXPECT_NE(count_begin, std::string::npos);
  *span_count = std::strtoll(text.c_str() + count_begin + 13, nullptr, 10);

  std::vector<serve::Request> spans;
  size_t pos = spans_begin;
  while (true) {
    const size_t object_begin = text.find('{', pos + 1);
    if (object_begin == std::string::npos) break;
    const size_t object_end = text.find('}', object_begin);
    EXPECT_NE(object_end, std::string::npos);
    auto span =
        serve::ParseRequest(text.substr(object_begin, object_end - object_begin + 1));
    EXPECT_TRUE(span.ok()) << span.status().ToString();
    if (!span.ok()) break;
    spans.push_back(*span);
    pos = object_end;
  }
  return spans;
}

TEST(TraceTest, DisabledSpansRecordNothing) {
  trace::Disable();
  { TraceSpan span("mb.test.ignored"); }
  trace::Enable();
  EXPECT_EQ(trace::CollectedSpanCount(), 0u);
  trace::Disable();
}

TEST(TraceTest, NestedSpansCarryParentAndDepth) {
  trace::Enable();
  {
    TraceSpan outer("mb.test.outer");
    {
      TraceSpan inner("mb.test.inner");
      TraceSpan innermost("mb.test.innermost");
    }
    TraceSpan sibling("mb.test.sibling");
  }
  trace::Disable();
  ASSERT_EQ(trace::CollectedSpanCount(), 4u);

  const std::string path = TracePath("trace_nested");
  ASSERT_TRUE(trace::WriteJson(path).ok());
  int64_t span_count = 0;
  const std::vector<serve::Request> spans = ParseTrace(ReadFile(path), &span_count);
  std::remove(path.c_str());
  EXPECT_EQ(span_count, 4);
  ASSERT_EQ(spans.size(), 4u);

  std::map<std::string, serve::Request> by_name;
  for (const auto& span : spans) by_name[std::string(span.Get("name"))] = span;
  ASSERT_EQ(by_name.size(), 4u);
  const auto id_of = [&](const char* name) { return by_name[name].Get("id"); };
  EXPECT_EQ(by_name["mb.test.outer"].Get("parent"), "-1");
  EXPECT_EQ(by_name["mb.test.outer"].Get("depth"), "0");
  EXPECT_EQ(by_name["mb.test.inner"].Get("parent"), id_of("mb.test.outer"));
  EXPECT_EQ(by_name["mb.test.inner"].Get("depth"), "1");
  EXPECT_EQ(by_name["mb.test.innermost"].Get("parent"), id_of("mb.test.inner"));
  EXPECT_EQ(by_name["mb.test.innermost"].Get("depth"), "2");
  // The sibling opens after inner closed, so it nests under outer again.
  EXPECT_EQ(by_name["mb.test.sibling"].Get("parent"), id_of("mb.test.outer"));
  EXPECT_EQ(by_name["mb.test.sibling"].Get("depth"), "1");
  for (const auto& span : spans) {
    EXPECT_GE(std::stod(std::string(span.Get("dur_us"))), 0.0);
    EXPECT_GE(std::stod(std::string(span.Get("start_us"))), 0.0);
  }
}

TEST(TraceTest, SpansFromExitedThreadsSurviveAsOrphans) {
  trace::Enable();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] { TraceSpan span("mb.test.worker"); });
  }
  for (auto& thread : threads) thread.join();
  trace::Disable();
  // All four spans collected even though their threads are gone, with
  // distinct thread ids.
  const std::string path = TracePath("trace_orphans");
  ASSERT_TRUE(trace::WriteJson(path).ok());
  int64_t span_count = 0;
  const std::vector<serve::Request> spans = ParseTrace(ReadFile(path), &span_count);
  std::remove(path.c_str());
  EXPECT_EQ(span_count, 4);
  ASSERT_EQ(spans.size(), 4u);
  std::map<std::string, int> tids;
  for (const auto& span : spans) {
    EXPECT_EQ(span.Get("name"), "mb.test.worker");
    EXPECT_EQ(span.Get("parent"), "-1");
    ++tids[std::string(span.Get("tid"))];
  }
  EXPECT_EQ(tids.size(), 4u);
}

TEST(TraceTest, EnableClearsPreviousRun) {
  trace::Enable();
  { TraceSpan span("mb.test.first_run"); }
  EXPECT_EQ(trace::CollectedSpanCount(), 1u);
  trace::Enable();
  EXPECT_EQ(trace::CollectedSpanCount(), 0u);
  { TraceSpan span("mb.test.second_run"); }
  EXPECT_EQ(trace::CollectedSpanCount(), 1u);
  trace::Disable();
}

TEST(TraceTest, WriteJsonFailsCleanlyOnBadPath) {
  trace::Disable();
  const Status status = trace::WriteJson("/nonexistent-dir/trace.json");
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace microbrowse
