// Copyright 2026 The Microbrowse Authors

#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace microbrowse {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_TRUE(status.message().empty());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, NamedConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
}

TEST(StatusTest, ErrorsAreNotOk) {
  EXPECT_FALSE(Status::Internal("boom").ok());
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  const Status status = Status::NotFound("missing key");
  EXPECT_EQ(status.ToString(), "NotFound: missing key");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIOError), "IOError");
}

TEST(StatusTest, OkStatusIgnoresMessage) {
  const Status status(StatusCode::kOk, "should be dropped");
  EXPECT_TRUE(status.message().empty());
}

Status FailsThrough() {
  MB_RETURN_IF_ERROR(Status::Internal("inner"));
  return Status::OK();
}

Status Passes() {
  MB_RETURN_IF_ERROR(Status::OK());
  return Status::NotFound("reached end");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_EQ(FailsThrough().code(), StatusCode::kInternal);
  EXPECT_EQ(Passes().code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("nope"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> good(7);
  Result<int> bad(Status::Internal("x"));
  EXPECT_EQ(good.value_or(-1), 7);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  std::string taken = std::move(result).value();
  EXPECT_EQ(taken, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> result(std::string("abc"));
  EXPECT_EQ(result->size(), 3u);
}

Result<int> Double(Result<int> input) {
  MB_ASSIGN_OR_RETURN(int v, std::move(input));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(Double(Result<int>(21)).value(), 42);
  EXPECT_EQ(Double(Result<int>(Status::Internal("x"))).status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace microbrowse
