// Copyright 2026 The Microbrowse Authors

#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace microbrowse {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.NextU64() == b.NextU64() ? 1 : 0;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ReseedResetsStream) {
  Rng rng(7);
  const uint64_t first = rng.NextU64();
  rng.NextU64();
  rng.Seed(7);
  EXPECT_EQ(rng.NextU64(), first);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextIndexRespectsBound) {
  Rng rng(13);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 7ULL, 100ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextIndex(bound), bound);
    }
  }
}

TEST(RngTest, NextIndexIsRoughlyUniform) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextIndex(10)];
  for (int count : counts) {
    EXPECT_NEAR(static_cast<double>(count) / n, 0.1, 0.01);
  }
}

TEST(RngTest, UniformIntIsInclusive) {
  Rng rng(19);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(29);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(31);
  const int n = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParameters) {
  Rng rng(37);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

struct BinomialCase {
  int64_t n;
  double p;
};

class BinomialTest : public ::testing::TestWithParam<BinomialCase> {};

TEST_P(BinomialTest, MeanAndBoundsMatch) {
  const BinomialCase param = GetParam();
  Rng rng(41);
  const int draws = 20000;
  double sum = 0.0;
  for (int i = 0; i < draws; ++i) {
    const int64_t x = rng.Binomial(param.n, param.p);
    ASSERT_GE(x, 0);
    ASSERT_LE(x, param.n);
    sum += static_cast<double>(x);
  }
  const double mean = sum / draws;
  const double expected = static_cast<double>(param.n) * param.p;
  const double stddev = std::sqrt(expected * (1.0 - param.p));
  // Mean of `draws` samples should be within ~5 standard errors.
  EXPECT_NEAR(mean, expected, 5.0 * stddev / std::sqrt(static_cast<double>(draws)) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(SmallAndLarge, BinomialTest,
                         ::testing::Values(BinomialCase{1, 0.5}, BinomialCase{10, 0.2},
                                           BinomialCase{100, 0.05}, BinomialCase{1000, 0.007},
                                           BinomialCase{100000, 0.03},
                                           BinomialCase{400000, 0.08}));

TEST(RngTest, BinomialDegenerateCases) {
  Rng rng(43);
  EXPECT_EQ(rng.Binomial(0, 0.5), 0);
  EXPECT_EQ(rng.Binomial(100, 0.0), 0);
  EXPECT_EQ(rng.Binomial(100, 1.0), 100);
  EXPECT_EQ(rng.Binomial(-5, 0.5), 0);
}

TEST(RngTest, PoissonMean) {
  Rng rng(47);
  for (double lambda : {0.5, 3.0, 50.0}) {
    const int n = 20000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(lambda));
    EXPECT_NEAR(sum / n, lambda, 5.0 * std::sqrt(lambda / n) + 0.05);
  }
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(53);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.01);
}

TEST(RngTest, ZipfFavorsLowRanks) {
  Rng rng(59);
  std::vector<int> counts(20, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.Zipf(20, 1.0)];
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[5], counts[19]);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(61);
  std::vector<int> items(50);
  std::iota(items.begin(), items.end(), 0);
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, items);  // Astronomically unlikely to be identity.
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(67);
  Rng child = parent.Fork(1);
  Rng parent2(67);
  Rng child2 = parent2.Fork(1);
  // Deterministic: same parent seed and salt give the same child stream.
  EXPECT_EQ(child.NextU64(), child2.NextU64());
  // Different salts diverge.
  Rng parent3(67);
  Rng other = parent3.Fork(2);
  EXPECT_NE(child.NextU64(), other.NextU64());
}

TEST(SplitMix64Test, KnownSequenceIsStable) {
  uint64_t state = 0;
  const uint64_t first = SplitMix64(state);
  const uint64_t second = SplitMix64(state);
  EXPECT_NE(first, second);
  // Pin the first value so accidental algorithm changes are caught.
  uint64_t state2 = 0;
  EXPECT_EQ(SplitMix64(state2), first);
}

}  // namespace
}  // namespace microbrowse
