// Copyright 2026 The Microbrowse Authors
//
// Bump-pointer arena tests: pointer stability across block growth, Reset
// block reuse (the zero-steady-state-allocation property the serving hot
// path depends on), oversized allocations and move semantics.

#include "common/arena.h"

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace microbrowse {
namespace {

TEST(ArenaTest, DupReturnsStableIndependentCopies) {
  Arena arena(64);
  std::string original = "hello arena";
  const std::string_view copy = arena.Dup(original);
  EXPECT_EQ(copy, "hello arena");
  EXPECT_NE(copy.data(), original.data());
  // Mutating (or destroying) the source must not affect the copy.
  original.assign(original.size(), 'x');
  EXPECT_EQ(copy, "hello arena");
}

TEST(ArenaTest, EmptyDupIsValidAndAllocatesNothing) {
  Arena arena(64);
  const std::string_view empty = arena.Dup("");
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(arena.block_count(), 0u);
}

TEST(ArenaTest, PointersSurviveBlockGrowth) {
  // Block bookkeeping lives in a vector, but the character storage is a
  // separately heap-allocated unique_ptr per block — growing the vector
  // must not invalidate previously returned views.
  Arena arena(16);
  std::vector<std::string_view> views;
  std::vector<std::string> expected;
  for (int i = 0; i < 200; ++i) {
    expected.push_back("value-" + std::to_string(i));
    views.push_back(arena.Dup(expected.back()));
  }
  EXPECT_GT(arena.block_count(), 1u);
  for (size_t i = 0; i < views.size(); ++i) {
    EXPECT_EQ(views[i], expected[i]) << i;
  }
}

TEST(ArenaTest, ResetReusesBlocksWithoutGrowing) {
  Arena arena(64);
  auto fill = [&arena] {
    for (int i = 0; i < 50; ++i) {
      (void)arena.Dup("a request-sized chunk of text #" + std::to_string(i));
    }
  };
  fill();
  const size_t blocks_after_warmup = arena.block_count();
  const size_t bytes_after_warmup = arena.retained_bytes();
  ASSERT_GT(blocks_after_warmup, 0u);
  // Steady state: the same workload after Reset must fit in the retained
  // blocks — zero further block allocations, the §17 hot-path property.
  for (int round = 0; round < 10; ++round) {
    arena.Reset();
    fill();
    EXPECT_EQ(arena.block_count(), blocks_after_warmup) << "round " << round;
    EXPECT_EQ(arena.retained_bytes(), bytes_after_warmup) << "round " << round;
  }
}

TEST(ArenaTest, OversizedAllocationGetsItsOwnBlock) {
  Arena arena(32);
  const std::string big(1000, 'b');
  const std::string_view view = arena.Dup(big);
  EXPECT_EQ(view, big);
  EXPECT_GE(arena.retained_bytes(), 1000u);
  // Small allocations keep working afterwards.
  EXPECT_EQ(arena.Dup("tail"), "tail");
}

TEST(ArenaTest, ResetWalksPastSpentOversizedBlocks) {
  // After Reset, Allocate rewinds to block 0; a request too large for the
  // remaining space in early blocks must advance to (or allocate) a block
  // that fits, without corrupting earlier allocations.
  Arena arena(16);
  (void)arena.Dup(std::string(100, 'a'));  // Oversized block.
  arena.Reset();
  const std::string_view small = arena.Dup("tiny");
  const std::string_view large = arena.Dup(std::string(60, 'z'));
  EXPECT_EQ(small, "tiny");
  EXPECT_EQ(large, std::string(60, 'z'));
}

TEST(ArenaTest, MoveKeepsOutstandingViewsValid) {
  Arena arena(32);
  const std::string_view view = arena.Dup("survives the move");
  Arena moved(std::move(arena));
  EXPECT_EQ(view, "survives the move");
  EXPECT_EQ(moved.Dup("post-move"), "post-move");
}

TEST(ArenaTest, ZeroBlockSizeIsClampedNotUndefined) {
  Arena arena(0);
  EXPECT_EQ(arena.Dup("x"), "x");
  EXPECT_EQ(arena.Dup("yz"), "yz");
}

}  // namespace
}  // namespace microbrowse
