// Copyright 2026 The Microbrowse Authors

#include "common/string_util.h"

#include <gtest/gtest.h>

namespace microbrowse {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitTest, NoSeparator) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(SplitWhitespaceTest, DropsEmptyRuns) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(SplitJoinTest, RoundTrip) {
  const std::string text = "x,y,z,w";
  EXPECT_EQ(Join(Split(text, ','), ","), text);
}

TEST(ToLowerAsciiTest, LowersOnlyAscii) {
  EXPECT_EQ(ToLowerAscii("Hello World 123"), "hello world 123");
  EXPECT_EQ(ToLowerAscii(""), "");
}

TEST(StripAsciiWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripAsciiWhitespace("  core  "), "core");
  EXPECT_EQ(StripAsciiWhitespace("core"), "core");
  EXPECT_EQ(StripAsciiWhitespace("\t\n "), "");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
}

TEST(AffixTest, StartsWith) {
  EXPECT_TRUE(StartsWith("rewrite:a=>b", "rewrite:"));
  EXPECT_FALSE(StartsWith("rw", "rewrite"));
  EXPECT_TRUE(StartsWith("abc", ""));
}

TEST(AffixTest, EndsWith) {
  EXPECT_TRUE(EndsWith("table2.csv", ".csv"));
  EXPECT_FALSE(EndsWith(".csv", "table.csv"));
  EXPECT_TRUE(EndsWith("abc", ""));
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StrFormatTest, LongOutput) {
  const std::string long_arg(1000, 'a');
  EXPECT_EQ(StrFormat("%s", long_arg.c_str()).size(), 1000u);
}

TEST(FormatDoubleTest, RoundsCorrectly) {
  EXPECT_EQ(FormatDouble(0.5729, 3), "0.573");
  EXPECT_EQ(FormatDouble(1.0, 1), "1.0");
}

TEST(FormatPercentTest, ScalesAndAppendsSign) {
  EXPECT_EQ(FormatPercent(0.559), "55.9%");
  EXPECT_EQ(FormatPercent(0.7123, 2), "71.23%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
}

}  // namespace
}  // namespace microbrowse
