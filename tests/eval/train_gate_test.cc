// Copyright 2026 The Microbrowse Authors
//
// Unit tests for the training-benchmark speedup gate (eval/train_gate.h):
// which sweep points are gated, when the gate is enforced, and how failures
// and the headline number are reported.

#include "eval/train_gate.h"

#include <gtest/gtest.h>

#include <vector>

namespace microbrowse {
namespace {

TrainGatePoint Point(const char* solver, size_t pairs, int threads, double speedup) {
  TrainGatePoint point;
  point.solver = solver;
  point.pairs = pairs;
  point.threads = threads;
  point.speedup_vs_1_thread = speedup;
  return point;
}

TEST(TrainGateTest, GatesOnlyLargeProximalPointsAtGateThreads) {
  TrainGateOptions options;
  EXPECT_TRUE(IsGatedPoint(Point("proximal_batch", 100000, 8, 3.5), options));
  EXPECT_TRUE(IsGatedPoint(Point("proximal_batch", 1000000, 8, 3.5), options));
  EXPECT_FALSE(IsGatedPoint(Point("proximal_batch", 99999, 8, 3.5), options));
  EXPECT_FALSE(IsGatedPoint(Point("proximal_batch", 100000, 4, 3.5), options));
  EXPECT_FALSE(IsGatedPoint(Point("adagrad", 100000, 8, 3.5), options));
}

TEST(TrainGateTest, PassesWhenEveryGatedPointMeetsTarget) {
  TrainGateOptions options;
  options.require = true;
  const std::vector<TrainGatePoint> points = {
      Point("adagrad", 100000, 8, 0.9),           // Not gated: wrong solver.
      Point("proximal_batch", 100000, 2, 1.4),    // Not gated: wrong threads.
      Point("proximal_batch", 10000, 8, 1.1),     // Not gated: too small.
      Point("proximal_batch", 100000, 8, 3.02),   // Gated, meets.
      Point("proximal_batch", 1000000, 8, 4.10),  // Gated, meets.
  };
  const TrainGateResult result = EvaluateTrainGate(points, options);
  EXPECT_TRUE(result.enforced);
  EXPECT_TRUE(result.passed);
  EXPECT_TRUE(result.failing.empty());
  EXPECT_EQ(result.headline_pairs, 1000000u);
  EXPECT_DOUBLE_EQ(result.headline_speedup, 4.10);
}

TEST(TrainGateTest, FailsWhenAnyGatedPointMissesTarget) {
  TrainGateOptions options;
  options.require = true;
  const std::vector<TrainGatePoint> points = {
      Point("proximal_batch", 100000, 8, 2.99),   // Gated, misses.
      Point("proximal_batch", 1000000, 8, 3.50),  // Gated, meets.
  };
  const TrainGateResult result = EvaluateTrainGate(points, options);
  EXPECT_TRUE(result.enforced);
  EXPECT_FALSE(result.passed);
  ASSERT_EQ(result.failing.size(), 1u);
  EXPECT_EQ(result.failing[0], 0u);
  // The headline is the LARGEST gated point, independent of which failed.
  EXPECT_EQ(result.headline_pairs, 1000000u);
}

TEST(TrainGateTest, NotEnforcedOnSmallHardwareUnlessRequired) {
  const std::vector<TrainGatePoint> points = {
      Point("proximal_batch", 100000, 8, 1.0),  // A 1-core box can't scale.
  };
  TrainGateOptions options;
  options.hardware_threads = 1;
  TrainGateResult result = EvaluateTrainGate(points, options);
  EXPECT_FALSE(result.enforced);
  EXPECT_TRUE(result.passed);
  // The miss is still visible for reporting.
  ASSERT_EQ(result.failing.size(), 1u);

  options.require = true;
  result = EvaluateTrainGate(points, options);
  EXPECT_TRUE(result.enforced);
  EXPECT_FALSE(result.passed);
}

TEST(TrainGateTest, EnforcedAutomaticallyOnCapableHardwareWithGateablePoint) {
  TrainGateOptions options;
  options.hardware_threads = 16;
  const std::vector<TrainGatePoint> meets = {Point("proximal_batch", 200000, 8, 3.4)};
  EXPECT_TRUE(EvaluateTrainGate(meets, options).enforced);
  EXPECT_TRUE(EvaluateTrainGate(meets, options).passed);

  // Capable hardware but a sweep with nothing gateable: not enforced.
  const std::vector<TrainGatePoint> tiny = {Point("proximal_batch", 2000, 8, 1.2)};
  EXPECT_FALSE(EvaluateTrainGate(tiny, options).enforced);
}

TEST(TrainGateTest, RequiredRunWithNoGateablePointPassesVacuously) {
  TrainGateOptions options;
  options.require = true;
  const std::vector<TrainGatePoint> points = {Point("proximal_batch", 2000, 8, 1.2)};
  const TrainGateResult result = EvaluateTrainGate(points, options);
  EXPECT_TRUE(result.enforced);
  EXPECT_TRUE(result.passed);
  EXPECT_EQ(result.headline_pairs, 0u);
  EXPECT_EQ(result.headline_speedup, 0.0);
}

TEST(TrainGateTest, CustomThresholdsAreHonoured) {
  TrainGateOptions options;
  options.require = true;
  options.min_speedup = 2.0;
  options.min_pairs = 50000;
  options.gate_threads = 4;
  const std::vector<TrainGatePoint> points = {
      Point("proximal_batch", 50000, 4, 2.1),
      Point("proximal_batch", 50000, 8, 0.5),  // Wrong threads under custom gate.
  };
  const TrainGateResult result = EvaluateTrainGate(points, options);
  EXPECT_TRUE(result.passed);
  EXPECT_EQ(result.headline_pairs, 50000u);
}

}  // namespace
}  // namespace microbrowse
