// Copyright 2026 The Microbrowse Authors
//
// Golden-number regression test for the Table 2 reproduction: the full
// pipeline (corpus generation -> pair extraction -> stats build -> two-
// phase training -> cross-validated metrics) on a small fixed-seed corpus
// must reproduce the checked-in per-model numbers to 1e-9, and the
// paper's qualitative ordering (M1 text-only worst, M6 full model best)
// must hold. A drift here means some stage changed numerical behaviour —
// intentionally or not.
//
// Regenerating the golden file after an *intentional* change:
//   MB_REGEN_GOLDEN=1 ./build/tests/mb_golden_repro_test
// then commit the updated tests/eval/golden/table2_small.json. The file
// is a flat JSON object (serve/protocol.h codec) with shortest-round-trip
// doubles, so the comparison is effectively bitwise.
//
// On failure the test writes the freshly computed numbers next to the
// golden path as table2_small.actual.json (CI uploads it as an artifact)
// so the diff is inspectable without rerunning.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "eval/experiments.h"
#include "serve/protocol.h"

#ifndef MB_GOLDEN_DIR
#error "MB_GOLDEN_DIR must be defined to the checked-in golden directory"
#endif

namespace microbrowse {
namespace {

/// Small but not degenerate: big enough that every model trains on a few
/// thousand pairs and the M1 < M6 gap is stable, small enough for tier 1.
/// Thread counts deliberately exceed one — the determinism contract
/// (DESIGN.md section 11) makes the numbers identical to a serial run.
ExperimentOptions GoldenOptions() {
  ExperimentOptions options;
  options.num_adgroups = 400;
  options.folds = 3;
  options.seed = 2026;
  options.Normalize();
  options.pipeline.num_threads = 3;
  options.pipeline.train_threads = 2;
  return options;
}

std::string GoldenPath() { return std::string(MB_GOLDEN_DIR) + "/table2_small.json"; }

/// Flattens a Table2Result into the golden key -> value text mapping.
std::string Serialize(const Table2Result& result) {
  serve::JsonWriter writer;
  writer.Int("num_pairs", static_cast<int64_t>(result.num_pairs));
  writer.Int("num_adgroups", static_cast<int64_t>(result.num_adgroups));
  writer.Int("num_models", static_cast<int64_t>(result.rows.size()));
  for (const Table2Row& row : result.rows) {
    writer.Number(row.model + ".recall", row.recall)
        .Number(row.model + ".precision", row.precision)
        .Number(row.model + ".f_measure", row.f_measure)
        .Number(row.model + ".accuracy", row.accuracy)
        .Number(row.model + ".auc", row.auc);
  }
  return writer.Finish();
}

TEST(GoldenReproTest, Table2SmallMatchesCheckedInGolden) {
  auto result = RunTable2(GoldenOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 6u);

  // The qualitative claim first: ordering must hold regardless of golden
  // drift, in both directions of the refresh cycle.
  double m1_f = 0.0, m6_f = 0.0;
  for (const Table2Row& row : result->rows) {
    if (row.model == "M1") m1_f = row.f_measure;
    if (row.model == "M6") m6_f = row.f_measure;
  }
  EXPECT_GT(m1_f, 0.0);
  EXPECT_LT(m1_f, m6_f) << "position-aware M6 must beat text-only M1";

  const std::string serialized = Serialize(*result);
  if (const char* regen = std::getenv("MB_REGEN_GOLDEN");
      regen != nullptr && *regen != '\0' && std::string(regen) != "0") {
    std::ofstream out(GoldenPath(), std::ios::out | std::ios::trunc);
    ASSERT_TRUE(out.is_open()) << GoldenPath();
    out << serialized << "\n";
    out.close();
    ASSERT_FALSE(out.fail());
    GTEST_SKIP() << "regenerated " << GoldenPath();
  }

  std::ifstream in(GoldenPath());
  ASSERT_TRUE(in.is_open())
      << GoldenPath() << " missing; regenerate with MB_REGEN_GOLDEN=1 (see header)";
  std::ostringstream golden_text;
  golden_text << in.rdbuf();
  auto golden = serve::ParseRequest(
      golden_text.str().substr(0, golden_text.str().find_last_of('}') + 1));
  ASSERT_TRUE(golden.ok()) << golden.status().ToString();
  auto actual = serve::ParseRequest(serialized);
  ASSERT_TRUE(actual.ok());

  bool mismatch = false;
  EXPECT_EQ(actual->fields.size(), golden->fields.size());
  mismatch |= actual->fields.size() != golden->fields.size();
  for (const auto& [key, golden_value] : golden->fields) {
    ASSERT_TRUE(actual->Has(key)) << key;
    const std::string actual_value(actual->Get(key));
    if (key == "num_pairs" || key == "num_adgroups" || key == "num_models") {
      EXPECT_EQ(actual_value, golden_value) << key;
      mismatch |= actual_value != golden_value;
    } else {
      const double expected = std::stod(std::string(golden_value));
      const double computed = std::stod(actual_value);
      EXPECT_NEAR(computed, expected, 1e-9) << key;
      mismatch |= std::fabs(computed - expected) > 1e-9;
    }
  }
  if (mismatch) {
    // Leave the computed numbers where CI can pick them up as an artifact.
    std::ofstream out(std::string(MB_GOLDEN_DIR) + "/table2_small.actual.json");
    out << serialized << "\n";
  }
}

}  // namespace
}  // namespace microbrowse
