// Copyright 2026 The Microbrowse Authors
//
// End-to-end integration tests: the full corpus-generation + two-phase
// classification pipeline at reduced scale, checking the paper's headline
// qualitative results rather than absolute numbers.

#include "eval/experiments.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

namespace microbrowse {
namespace {

ExperimentOptions TinyOptions() {
  ExperimentOptions options;
  options.num_adgroups = 700;
  options.folds = 3;
  options.seed = 11;
  return options;
}

TEST(ExperimentsTest, MakePairCorpusProducesPairs) {
  auto pairs = MakePairCorpus(TinyOptions(), Placement::kTop);
  ASSERT_TRUE(pairs.ok());
  EXPECT_GT(pairs->pairs.size(), 500u);
  for (const auto& pair : pairs->pairs) {
    EXPECT_NE(pair.r.serve_weight, pair.s.serve_weight);
    EXPECT_GT(pair.r.impressions, 0);
    EXPECT_GT(pair.s.impressions, 0);
  }
}

TEST(ExperimentsTest, PairCorpusIsDeterministic) {
  auto a = MakePairCorpus(TinyOptions(), Placement::kTop);
  auto b = MakePairCorpus(TinyOptions(), Placement::kTop);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->pairs.size(), b->pairs.size());
  for (size_t i = 0; i < a->pairs.size(); ++i) {
    EXPECT_EQ(a->pairs[i].adgroup_id, b->pairs[i].adgroup_id);
    EXPECT_EQ(a->pairs[i].r.clicks, b->pairs[i].r.clicks);
  }
}

TEST(ExperimentsTest, TopAndRhsCorporaDiffer) {
  auto top = MakePairCorpus(TinyOptions(), Placement::kTop);
  auto rhs = MakePairCorpus(TinyOptions(), Placement::kRhs);
  ASSERT_TRUE(top.ok());
  ASSERT_TRUE(rhs.ok());
  double top_ctr = 0.0, rhs_ctr = 0.0;
  for (const auto& pair : top->pairs) top_ctr += pair.r.ctr();
  for (const auto& pair : rhs->pairs) rhs_ctr += pair.r.ctr();
  top_ctr /= top->pairs.size();
  rhs_ctr /= rhs->pairs.size();
  EXPECT_LT(rhs_ctr, top_ctr * 0.7);
}

// The headline reproduction check: position information must deliver a
// clear accuracy gain over the bag-of-terms baseline, and the full model
// must be comparable to the best single-family model. Run at reduced scale
// (this is the slowest test in the suite, a couple of minutes on 1 core).
TEST(ExperimentsTest, PositionModelsBeatPositionBlindModels) {
  ExperimentOptions options = TinyOptions();
  options.num_adgroups = 1500;
  options.Normalize();
  auto pairs = MakePairCorpus(options, Placement::kTop);
  ASSERT_TRUE(pairs.ok());

  auto run = [&](const ClassifierConfig& config) {
    auto report = RunPairClassificationCv(*pairs, config, options.pipeline);
    EXPECT_TRUE(report.ok()) << config.name;
    return report.ok() ? report->metrics.accuracy() : 0.0;
  };
  const double m1 = run(ClassifierConfig::M1());
  const double m2 = run(ClassifierConfig::M2());
  const double m6 = run(ClassifierConfig::M6());

  EXPECT_GT(m1, 0.5);   // Text alone is better than chance...
  EXPECT_GT(m2, m1 + 0.03);  // ...but position adds a clear margin.
  EXPECT_GT(m6, m1 + 0.03);
}

TEST(ExperimentsTest, EnvIntParsesAndFallsBack) {
  ::setenv("MB_TEST_ENV_INT", "123", 1);
  EXPECT_EQ(EnvInt("MB_TEST_ENV_INT", 5), 123);
  ::setenv("MB_TEST_ENV_INT", "garbage", 1);
  EXPECT_EQ(EnvInt("MB_TEST_ENV_INT", 5), 5);
  ::setenv("MB_TEST_ENV_INT", "-3", 1);
  EXPECT_EQ(EnvInt("MB_TEST_ENV_INT", 5), 5);
  ::unsetenv("MB_TEST_ENV_INT");
  EXPECT_EQ(EnvInt("MB_TEST_ENV_INT", 7), 7);
}

TEST(ExperimentsTest, NormalizePropagatesSettings) {
  ExperimentOptions options;
  options.num_adgroups = 42;
  options.folds = 4;
  options.seed = 77;
  options.Normalize();
  EXPECT_EQ(options.corpus.num_adgroups, 42);
  EXPECT_EQ(options.corpus.seed, 77u);
  EXPECT_EQ(options.pipeline.folds, 4);
}

TEST(ExperimentsTest, Fig3ProducesFiniteWeightsSomewhere) {
  ExperimentOptions options = TinyOptions();
  auto result = RunFig3(options);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->weights.empty());
  int finite = 0;
  for (const auto& line : result->weights) {
    for (double w : line) finite += std::isnan(w) ? 0 : 1;
  }
  EXPECT_GT(finite, 5);
}

}  // namespace
}  // namespace microbrowse
