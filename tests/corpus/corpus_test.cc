// Copyright 2026 The Microbrowse Authors
//
// Tests for the synthetic ADCORPUS substrate: phrase pools, ground-truth
// relevance, the generator, serve weights and pair extraction.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "corpus/generator.h"
#include "corpus/pair_extraction.h"
#include "corpus/phrase_pool.h"
#include "corpus/pool_relevance.h"
#include "corpus/serve_weight.h"

namespace microbrowse {
namespace {

// --- PhrasePool

class BuiltinPoolTest : public ::testing::TestWithParam<int> {
 protected:
  PhrasePool GetPool() const {
    switch (GetParam()) {
      case 0:
        return PhrasePool::Travel();
      case 1:
        return PhrasePool::Shopping();
      default:
        return PhrasePool::Finance();
    }
  }
};

TEST_P(BuiltinPoolTest, EverySlotHasEnoughPhrases) {
  const PhrasePool pool = GetPool();
  for (int s = 0; s < kNumSlotTypes; ++s) {
    EXPECT_GE(pool.PhrasesFor(static_cast<SlotType>(s)).size(), 4u)
        << SlotTypeName(static_cast<SlotType>(s));
  }
}

TEST_P(BuiltinPoolTest, AppealsAreInRange) {
  const PhrasePool pool = GetPool();
  for (int s = 0; s < kNumSlotTypes; ++s) {
    for (const Phrase& phrase : pool.PhrasesFor(static_cast<SlotType>(s))) {
      EXPECT_GT(phrase.appeal, 0.0) << phrase.text;
      EXPECT_LT(phrase.appeal, 1.0) << phrase.text;
      EXPECT_FALSE(phrase.text.empty());
    }
  }
}

TEST_P(BuiltinPoolTest, PhrasesAreShortTokenSequences) {
  const PhrasePool pool = GetPool();
  for (int s = 0; s < kNumSlotTypes; ++s) {
    for (const Phrase& phrase : pool.PhrasesFor(static_cast<SlotType>(s))) {
      // No leading/trailing spaces; at most ~6 tokens.
      EXPECT_EQ(phrase.text.front() == ' ', false);
      EXPECT_EQ(phrase.text.back() == ' ', false);
      EXPECT_LE(std::count(phrase.text.begin(), phrase.text.end(), ' '), 6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllVerticals, BuiltinPoolTest, ::testing::Values(0, 1, 2));

TEST(PhrasePoolTest, SampleIndexExcludingNeverReturnsExcluded) {
  const PhrasePool pool = PhrasePool::Travel();
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    auto index = pool.SampleIndexExcluding(SlotType::kAction, 2, &rng);
    ASSERT_TRUE(index.ok());
    EXPECT_NE(*index, 2u);
  }
}

TEST(PhrasePoolTest, SamplingFromEmptySlotIsAnErrorNotACrash) {
  PhrasePool pool;
  Rng rng(3);
  auto index = pool.SampleIndex(SlotType::kAction, &rng);
  ASSERT_FALSE(index.ok());
  EXPECT_EQ(index.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PhrasePoolTest, ExclusionNeedsTwoPhrases) {
  PhrasePool pool;
  pool.Add(SlotType::kAction, "only phrase", 0.5);
  Rng rng(3);
  auto index = pool.SampleIndexExcluding(SlotType::kAction, 0, &rng);
  ASSERT_FALSE(index.ok());
  EXPECT_EQ(index.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PhrasePoolTest, SyntheticPoolHasRequestedSize) {
  Rng rng(5);
  const PhrasePool pool = PhrasePool::Synthetic(7, &rng);
  for (int s = 0; s < kNumSlotTypes; ++s) {
    EXPECT_EQ(pool.PhrasesFor(static_cast<SlotType>(s)).size(), 7u);
  }
  EXPECT_EQ(pool.total_phrases(), 7u * kNumSlotTypes);
}

// --- PoolRelevance

TEST(PoolRelevanceTest, PhraseLookupReturnsAppeal) {
  PhrasePool pool;
  pool.Add(SlotType::kOffer, "20% off", 0.92);
  PoolRelevance relevance(pool, /*jitter=*/0.0);
  EXPECT_NEAR(relevance.BaseRelevance("20% off"), 0.92, 1e-12);
}

TEST(PoolRelevanceTest, TokenDecompositionMultipliesToAppeal) {
  PhrasePool pool;
  pool.Add(SlotType::kQuality, "free cancellation", 0.81);
  PoolRelevance relevance(pool, 0.0);
  const double per_token = relevance.BaseRelevance("free");
  EXPECT_NEAR(per_token * relevance.BaseRelevance("cancellation"), 0.81, 1e-9);
}

TEST(PoolRelevanceTest, UnknownTokensGetDefault) {
  PoolRelevance relevance;  // Empty map.
  EXPECT_NEAR(relevance.BaseRelevance("whatever"), 0.95, 1e-12);
}

TEST(PoolRelevanceTest, SharedTokenKeepsMaxValue) {
  PhrasePool pool;
  pool.Add(SlotType::kQuality, "free shipping", 0.92);
  pool.Add(SlotType::kOffer, "free upgrade", 0.64);
  PoolRelevance relevance(pool, 0.0);
  EXPECT_NEAR(relevance.BaseRelevance("free"), std::sqrt(0.92), 1e-9);
}

TEST(PoolRelevanceTest, JitterIsDeterministicPerQueryToken) {
  PhrasePool pool;
  pool.Add(SlotType::kOffer, "big sale", 0.8);
  PoolRelevance relevance(pool, /*jitter=*/0.8);
  EXPECT_DOUBLE_EQ(relevance.Relevance(1, "big sale"), relevance.Relevance(1, "big sale"));
  // Different queries typically perturb differently.
  int distinct = 0;
  for (int32_t q = 0; q < 20; ++q) {
    if (std::fabs(relevance.Relevance(q, "big sale") - relevance.Relevance(0, "big sale")) >
        1e-6) {
      ++distinct;
    }
  }
  EXPECT_GT(distinct, 10);
}

TEST(PoolRelevanceTest, JitterPreservesBounds) {
  PhrasePool pool;
  pool.Add(SlotType::kOffer, "x", 0.99);
  pool.Add(SlotType::kOffer, "y", 0.05);
  PoolRelevance relevance(pool, /*jitter=*/3.0);
  for (int32_t q = 0; q < 200; ++q) {
    for (const char* token : {"x", "y", "unknown"}) {
      const double r = relevance.Relevance(q, token);
      EXPECT_GT(r, 0.0);
      EXPECT_LT(r, 1.0);
    }
  }
}

TEST(PoolRelevanceTest, ZeroJitterIsBase) {
  PhrasePool pool;
  pool.Add(SlotType::kAction, "book", 0.74);
  PoolRelevance relevance(pool, 0.0);
  for (int32_t q = 0; q < 5; ++q) {
    EXPECT_DOUBLE_EQ(relevance.Relevance(q, "book"), 0.74);
  }
}

// --- Generator

AdCorpusOptions SmallCorpusOptions() {
  AdCorpusOptions options;
  options.num_adgroups = 300;
  options.seed = 99;
  return options;
}

TEST(GeneratorTest, DeterministicForSeed) {
  auto a = GenerateAdCorpus(SmallCorpusOptions());
  auto b = GenerateAdCorpus(SmallCorpusOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->corpus.adgroups.size(), b->corpus.adgroups.size());
  for (size_t g = 0; g < a->corpus.adgroups.size(); ++g) {
    const AdGroup& ga = a->corpus.adgroups[g];
    const AdGroup& gb = b->corpus.adgroups[g];
    ASSERT_EQ(ga.creatives.size(), gb.creatives.size());
    for (size_t c = 0; c < ga.creatives.size(); ++c) {
      EXPECT_EQ(ga.creatives[c].snippet, gb.creatives[c].snippet);
      EXPECT_EQ(ga.creatives[c].clicks, gb.creatives[c].clicks);
      EXPECT_EQ(ga.creatives[c].impressions, gb.creatives[c].impressions);
    }
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  auto a = GenerateAdCorpus(SmallCorpusOptions());
  AdCorpusOptions other = SmallCorpusOptions();
  other.seed = 100;
  auto b = GenerateAdCorpus(other);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(a->corpus.adgroups[0].creatives[0].snippet ==
               b->corpus.adgroups[0].creatives[0].snippet);
}

TEST(GeneratorTest, StructuralInvariants) {
  auto generated = GenerateAdCorpus(SmallCorpusOptions());
  ASSERT_TRUE(generated.ok());
  const AdCorpus& corpus = generated->corpus;
  EXPECT_GT(corpus.adgroups.size(), 250u);
  std::set<int64_t> creative_ids;
  for (const AdGroup& group : corpus.adgroups) {
    EXPECT_GE(group.creatives.size(), 2u);
    EXPECT_LE(group.creatives.size(), 4u);
    EXPECT_FALSE(group.keyword.empty());
    for (const Creative& creative : group.creatives) {
      EXPECT_TRUE(creative_ids.insert(creative.id).second) << "duplicate creative id";
      EXPECT_EQ(creative.snippet.num_lines(), 3);
      EXPECT_GE(creative.impressions, 200);
      EXPECT_GE(creative.clicks, 0);
      EXPECT_LE(creative.clicks, creative.impressions);
      EXPECT_GT(creative.true_ctr, 0.0);
      EXPECT_LT(creative.true_ctr, 1.0);
      // Brand line is never empty.
      EXPECT_FALSE(creative.snippet.line(0).empty());
    }
    // Siblings differ in text or layout.
    for (size_t i = 0; i + 1 < group.creatives.size(); ++i) {
      for (size_t j = i + 1; j < group.creatives.size(); ++j) {
        EXPECT_FALSE(group.creatives[i].snippet == group.creatives[j].snippet)
            << "identical siblings in adgroup " << group.id;
      }
    }
  }
}

TEST(GeneratorTest, ObservedCtrTracksTrueCtr) {
  auto generated = GenerateAdCorpus(SmallCorpusOptions());
  ASSERT_TRUE(generated.ok());
  double total_abs_error = 0.0;
  int count = 0;
  for (const AdGroup& group : generated->corpus.adgroups) {
    for (const Creative& creative : group.creatives) {
      total_abs_error += std::fabs(creative.ctr() - creative.true_ctr);
      ++count;
    }
  }
  // With ~400k impressions the empirical CTR hugs the true CTR.
  EXPECT_LT(total_abs_error / count, 0.002);
}

TEST(GeneratorTest, RhsPlacementLowersCtrAndImpressions) {
  auto top = GenerateAdCorpus(SmallCorpusOptions());
  AdCorpusOptions rhs_options = SmallCorpusOptions();
  rhs_options.placement = Placement::kRhs;
  auto rhs = GenerateAdCorpus(rhs_options);
  ASSERT_TRUE(top.ok());
  ASSERT_TRUE(rhs.ok());
  auto mean_ctr = [](const AdCorpus& corpus) {
    double total = 0.0;
    int n = 0;
    for (const auto& group : corpus.adgroups) {
      for (const auto& creative : group.creatives) {
        total += creative.true_ctr;
        ++n;
      }
    }
    return total / n;
  };
  EXPECT_LT(mean_ctr(rhs->corpus), 0.6 * mean_ctr(top->corpus));
}

TEST(GeneratorTest, RejectsInvalidOptions) {
  AdCorpusOptions options;
  options.num_adgroups = 0;
  EXPECT_FALSE(GenerateAdCorpus(options).ok());
  options = AdCorpusOptions();
  options.min_creatives = 1;
  EXPECT_FALSE(GenerateAdCorpus(options).ok());
  options = AdCorpusOptions();
  options.min_creatives = 5;
  options.max_creatives = 3;
  EXPECT_FALSE(GenerateAdCorpus(options).ok());
}

TEST(GeneratorTest, SameKeywordWithinAdgroup) {
  auto generated = GenerateAdCorpus(SmallCorpusOptions());
  ASSERT_TRUE(generated.ok());
  // Keyword ids are consistent: two adgroups with the same keyword string
  // share the keyword id.
  std::map<std::string, int32_t> seen;
  for (const AdGroup& group : generated->corpus.adgroups) {
    auto [it, inserted] = seen.emplace(group.keyword, group.keyword_id);
    if (!inserted) {
      EXPECT_EQ(it->second, group.keyword_id) << group.keyword;
    }
  }
}

// --- Serve weights

TEST(ServeWeightTest, WeightsAverageToOne) {
  AdGroup group;
  for (int i = 0; i < 3; ++i) {
    Creative creative;
    creative.impressions = 1000;
    creative.clicks = 50 + 20 * i;  // 50, 70, 90 clicks.
    group.creatives.push_back(creative);
  }
  const auto weights = ComputeServeWeights(group);
  ASSERT_EQ(weights.size(), 3u);
  // Impression-weighted mean of serve weights is 1 by construction.
  EXPECT_NEAR((weights[0] + weights[1] + weights[2]) / 3.0, 1.0, 1e-9);
  EXPECT_LT(weights[0], weights[1]);
  EXPECT_LT(weights[1], weights[2]);
}

TEST(ServeWeightTest, HigherCtrMeansHigherWeight) {
  AdGroup group;
  Creative a;
  a.impressions = 2000;
  a.clicks = 100;  // 5%
  Creative b;
  b.impressions = 1000;
  b.clicks = 80;  // 8%
  group.creatives = {a, b};
  const auto weights = ComputeServeWeights(group);
  EXPECT_GT(weights[1], weights[0]);
  EXPECT_NEAR(weights[1] / weights[0], 0.08 / 0.05, 1e-9);
}

TEST(ServeWeightTest, DegenerateGroups) {
  AdGroup empty_group;
  EXPECT_TRUE(ComputeServeWeights(empty_group).empty());

  AdGroup no_clicks;
  Creative c;
  c.impressions = 100;
  c.clicks = 0;
  no_clicks.creatives = {c, c};
  const auto weights = ComputeServeWeights(no_clicks);
  EXPECT_EQ(weights, (std::vector<double>{1.0, 1.0}));

  AdGroup zero_impressions;
  Creative z;
  zero_impressions.creatives = {z};
  EXPECT_EQ(ComputeServeWeights(zero_impressions), (std::vector<double>{1.0}));
}

// --- Pair extraction

TEST(PairExtractionTest, OnlySignificantPairsSurvive) {
  AdCorpus corpus;
  AdGroup group;
  group.id = 1;
  group.keyword_id = 5;
  Creative strong;
  strong.snippet = Snippet::FromTokens({{"a"}});
  strong.impressions = 100000;
  strong.clicks = 9000;  // 9%
  Creative weak;
  weak.snippet = Snippet::FromTokens({{"b"}});
  weak.impressions = 100000;
  weak.clicks = 5000;  // 5%
  Creative similar;
  similar.snippet = Snippet::FromTokens({{"c"}});
  similar.impressions = 300;
  similar.clicks = 27;  // 9% but tiny sample.
  group.creatives = {strong, weak, similar};
  corpus.adgroups.push_back(group);

  PairExtractionOptions options;
  options.min_impressions = 200;
  const PairCorpus pairs = ExtractSignificantPairs(corpus, options);
  // strong-vs-weak is hugely significant; pairs against `similar` are not
  // (tiny sample, same CTR as strong).
  ASSERT_GE(pairs.pairs.size(), 1u);
  bool found_strong_weak = false;
  for (const auto& pair : pairs.pairs) {
    EXPECT_EQ(pair.adgroup_id, 1);
    EXPECT_EQ(pair.keyword_id, 5);
    if (pair.r.clicks == 9000 && pair.s.clicks == 5000) found_strong_weak = true;
    EXPECT_FALSE(pair.r.clicks == 9000 && pair.s.clicks == 27);
  }
  EXPECT_TRUE(found_strong_weak);
}

TEST(PairExtractionTest, MinImpressionsFilter) {
  AdCorpus corpus;
  AdGroup group;
  Creative a;
  a.impressions = 100;
  a.clicks = 50;
  Creative b;
  b.impressions = 100;
  b.clicks = 5;
  group.creatives = {a, b};
  corpus.adgroups.push_back(group);
  PairExtractionOptions options;
  options.min_impressions = 500;
  EXPECT_TRUE(ExtractSignificantPairs(corpus, options).pairs.empty());
}

TEST(PairExtractionTest, MaxPairsPerAdgroupCap) {
  AdCorpus corpus;
  AdGroup group;
  for (int i = 0; i < 6; ++i) {
    Creative c;
    c.snippet = Snippet::FromTokens({{std::to_string(i)}});
    c.impressions = 100000;
    c.clicks = 2000 + 1500 * i;  // All pairwise differences significant.
    group.creatives.push_back(c);
  }
  corpus.adgroups.push_back(group);
  PairExtractionOptions options;
  options.max_pairs_per_adgroup = 4;
  EXPECT_EQ(ExtractSignificantPairs(corpus, options).pairs.size(), 4u);
  options.max_pairs_per_adgroup = 0;  // Unlimited: C(6,2) = 15.
  EXPECT_EQ(ExtractSignificantPairs(corpus, options).pairs.size(), 15u);
}

TEST(PairExtractionTest, ServeWeightsAttached) {
  AdCorpus corpus;
  AdGroup group;
  Creative a;
  a.snippet = Snippet::FromTokens({{"a"}});
  a.impressions = 50000;
  a.clicks = 5000;
  Creative b;
  b.snippet = Snippet::FromTokens({{"b"}});
  b.impressions = 50000;
  b.clicks = 2500;
  group.creatives = {a, b};
  corpus.adgroups.push_back(group);
  const PairCorpus pairs = ExtractSignificantPairs(corpus, {});
  ASSERT_EQ(pairs.pairs.size(), 1u);
  EXPECT_GT(pairs.pairs[0].r.serve_weight, pairs.pairs[0].s.serve_weight);
  EXPECT_EQ(pairs.pairs[0].delta_sw(), 1);
  EXPECT_GT(pairs.pairs[0].sw_diff(), 0.0);
}

TEST(PairExtractionTest, EndToEndYieldsPairs) {
  auto generated = GenerateAdCorpus(SmallCorpusOptions());
  ASSERT_TRUE(generated.ok());
  const PairCorpus pairs = ExtractSignificantPairs(generated->corpus, {});
  // At the default noise/impression levels most sibling pairs differ
  // significantly.
  EXPECT_GT(pairs.pairs.size(), generated->corpus.adgroups.size() / 2);
}

}  // namespace
}  // namespace microbrowse
