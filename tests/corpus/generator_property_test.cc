// Copyright 2026 The Microbrowse Authors
//
// Properties of the corpus generator that the reproduction's validity
// rests on: line-swap moves are invisible to bag-of-terms features, the
// attention cascade changes CTR through ordering alone, and the rewrite
// graph concentrates mutation traffic.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "corpus/generator.h"
#include "corpus/pair_extraction.h"
#include "microbrowse/classifier.h"
#include "text/ngram.h"

namespace microbrowse {
namespace {

/// Sorted multiset of all n-gram texts of a snippet.
std::multiset<std::string> NGramMultiset(const Snippet& snippet) {
  std::multiset<std::string> out;
  for (const TermSpan& span : ExtractNGrams(snippet, 3)) out.insert(span.text);
  return out;
}

TEST(GeneratorPropertyTest, LineSwapSiblingsAreNGramInvisible) {
  AdCorpusOptions options;
  options.num_adgroups = 800;
  options.seed = 31;
  auto generated = GenerateAdCorpus(options);
  ASSERT_TRUE(generated.ok());

  // Find sibling pairs whose snippets differ as text lines but whose
  // n-gram multisets are identical: these are the pure line-swap moves.
  int invisible_pairs = 0;
  const FeatureStatsDb db;
  const ClassifierConfig m1 = ClassifierConfig::M1();
  for (const AdGroup& group : generated->corpus.adgroups) {
    for (size_t i = 0; i + 1 < group.creatives.size(); ++i) {
      for (size_t j = i + 1; j < group.creatives.size(); ++j) {
        const Snippet& a = group.creatives[i].snippet;
        const Snippet& b = group.creatives[j].snippet;
        if (a == b) continue;
        if (NGramMultiset(a) != NGramMultiset(b)) continue;
        ++invisible_pairs;
        // M1's net feature vector over such a pair must be exactly empty.
        FeatureRegistry t_registry, p_registry;
        std::vector<CoupledOccurrence> occurrences;
        ExtractPairOccurrences(a, b, db, m1, &t_registry, &p_registry, &occurrences);
        std::map<FeatureId, double> net;
        for (const auto& occ : occurrences) net[occ.t] += occ.sign;
        for (const auto& [id, value] : net) {
          EXPECT_EQ(value, 0.0) << t_registry.NameOf(id);
        }
        // But their TRUE CTRs differ (the swap moved text between
        // visibility tiers) — this is the signal only position-aware
        // models can reach.
        EXPECT_NE(group.creatives[i].true_ctr, group.creatives[j].true_ctr);
      }
    }
  }
  // Such pairs must actually occur at a meaningful rate.
  EXPECT_GT(invisible_pairs, 20);
}

TEST(GeneratorPropertyTest, AttentionCascadeChangesCtrs) {
  AdCorpusOptions with_cascade;
  with_cascade.num_adgroups = 150;
  with_cascade.seed = 5;
  AdCorpusOptions without_cascade = with_cascade;
  without_cascade.attention_absorb = 0.0;

  auto a = GenerateAdCorpus(with_cascade);
  auto b = GenerateAdCorpus(without_cascade);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Same seeds, same creatives... the cascade only affects CTR levels.
  ASSERT_EQ(a->corpus.adgroups.size(), b->corpus.adgroups.size());
  int higher_without = 0, total = 0;
  for (size_t g = 0; g < a->corpus.adgroups.size(); ++g) {
    const auto& ga = a->corpus.adgroups[g];
    const auto& gb = b->corpus.adgroups[g];
    if (ga.creatives.size() != gb.creatives.size()) continue;
    for (size_t c = 0; c < ga.creatives.size(); ++c) {
      if (!(ga.creatives[c].snippet == gb.creatives[c].snippet)) continue;
      ++total;
      // Stopping early means fewer chances to be put off: the cascade can
      // only raise Eq. 3's product, never lower it.
      EXPECT_GE(ga.creatives[c].true_ctr, gb.creatives[c].true_ctr * 0.99);
      higher_without += ga.creatives[c].true_ctr > gb.creatives[c].true_ctr ? 1 : 0;
    }
  }
  ASSERT_GT(total, 100);
  EXPECT_GT(higher_without, total / 2);
}

TEST(GeneratorPropertyTest, RewriteTrafficIsConcentrated) {
  // With the Zipf rewrite graph, the distribution of (slot phrase -> slot
  // phrase) transitions across the corpus is heavy-headed: the top decile
  // of observed transitions carries most of the mass.
  AdCorpusOptions options;
  options.num_adgroups = 1200;
  options.seed = 13;
  auto generated = GenerateAdCorpus(options);
  ASSERT_TRUE(generated.ok());

  // Count distinct (line-2 action phrase) transitions between siblings as
  // a proxy: collect (first line2 token of a, first line2 token of b).
  std::map<std::pair<std::string, std::string>, int> transitions;
  for (const AdGroup& group : generated->corpus.adgroups) {
    for (size_t i = 0; i + 1 < group.creatives.size(); ++i) {
      const auto& a = group.creatives[i].snippet;
      const auto& b = group.creatives[i + 1].snippet;
      if (a.line(1).empty() || b.line(1).empty()) continue;
      if (a.line(1)[0] == b.line(1)[0]) continue;
      auto key = std::minmax(a.line(1)[0], b.line(1)[0]);
      ++transitions[{key.first, key.second}];
    }
  }
  ASSERT_GT(transitions.size(), 20u);
  std::vector<int> counts;
  int total = 0;
  for (const auto& [key, count] : transitions) {
    counts.push_back(count);
    total += count;
  }
  std::sort(counts.rbegin(), counts.rend());
  int head = 0;
  for (size_t i = 0; i < counts.size() / 4; ++i) head += counts[i];
  // The top quartile of transition types carries over half the traffic.
  EXPECT_GT(static_cast<double>(head) / total, 0.5);
}

TEST(GeneratorPropertyTest, ImpressionPowerMakesPairsSignificant) {
  // At the default impression scale nearly every within-adgroup CTR
  // difference is detectable; at 1% of the scale most are not.
  AdCorpusOptions strong;
  strong.num_adgroups = 200;
  strong.seed = 3;
  AdCorpusOptions weak = strong;
  weak.base_impressions = strong.base_impressions / 100;

  auto strong_corpus = GenerateAdCorpus(strong);
  auto weak_corpus = GenerateAdCorpus(weak);
  ASSERT_TRUE(strong_corpus.ok());
  ASSERT_TRUE(weak_corpus.ok());
  const size_t strong_pairs =
      ExtractSignificantPairs(strong_corpus->corpus, {}).pairs.size();
  PairExtractionOptions weak_options;
  weak_options.min_impressions = 100;
  const size_t weak_pairs =
      ExtractSignificantPairs(weak_corpus->corpus, weak_options).pairs.size();
  EXPECT_GT(strong_pairs, 2 * weak_pairs);
}

}  // namespace
}  // namespace microbrowse
