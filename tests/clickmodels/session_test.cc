// Copyright 2026 The Microbrowse Authors

#include "clickmodels/session.h"

#include <gtest/gtest.h>

#include "clickmodels/param_table.h"

namespace microbrowse {
namespace {

Session MakeSession(std::initializer_list<bool> clicks) {
  Session session;
  int doc = 0;
  for (bool clicked : clicks) {
    session.results.push_back(SessionResult{doc++, clicked});
  }
  return session;
}

TEST(SessionTest, LastClickPosition) {
  EXPECT_EQ(MakeSession({false, false, false}).last_click_position(), -1);
  EXPECT_EQ(MakeSession({true, false, false}).last_click_position(), 0);
  EXPECT_EQ(MakeSession({true, false, true}).last_click_position(), 2);
  EXPECT_EQ(Session().last_click_position(), -1);
}

TEST(SessionTest, NumClicks) {
  EXPECT_EQ(MakeSession({false, false}).num_clicks(), 0);
  EXPECT_EQ(MakeSession({true, false, true}).num_clicks(), 2);
}

TEST(ClickLogTest, RecomputeBounds) {
  ClickLog log;
  Session a;
  a.query_id = 3;
  a.results = {SessionResult{10, false}, SessionResult{4, true}};
  Session b;
  b.query_id = 1;
  b.results = {SessionResult{7, false}};
  log.sessions = {a, b};
  log.RecomputeBounds();
  EXPECT_EQ(log.num_queries, 4);
  EXPECT_EQ(log.num_docs, 11);
  EXPECT_EQ(log.max_positions, 2);
}

TEST(ClickLogTest, EmptyLogBounds) {
  ClickLog log;
  log.RecomputeBounds();
  EXPECT_EQ(log.num_queries, 0);
  EXPECT_EQ(log.num_docs, 0);
  EXPECT_EQ(log.max_positions, 0);
}

TEST(QueryDocKeyTest, IsInjectiveOverComponents) {
  EXPECT_NE(QueryDocKey(1, 2), QueryDocKey(2, 1));
  EXPECT_EQ(QueryDocKey(5, 9), QueryDocKey(5, 9));
  EXPECT_NE(QueryDocKey(0, 1), QueryDocKey(1, 0));
}

TEST(QueryDocTableTest, DefaultForUnseenPairs) {
  QueryDocTable table(0.25);
  EXPECT_DOUBLE_EQ(table.Get(1, 2), 0.25);
  table.Set(1, 2, 0.9);
  EXPECT_DOUBLE_EQ(table.Get(1, 2), 0.9);
  EXPECT_DOUBLE_EQ(table.Get(1, 3), 0.25);
  EXPECT_EQ(table.size(), 1u);
}

TEST(QueryDocAccumulatorTest, RatioWithSmoothing) {
  QueryDocAccumulator acc;
  acc.Add(0, 0, 3.0, 4.0);
  acc.Add(0, 0, 1.0, 1.0);  // Totals: num 4, den 5.
  QueryDocTable table(0.5);
  acc.Flush(table, /*alpha=*/1.0, /*prior=*/0.5);
  EXPECT_NEAR(table.Get(0, 0), (4.0 + 0.5) / (5.0 + 1.0), 1e-12);
}

TEST(QueryDocAccumulatorTest, ClearResets) {
  QueryDocAccumulator acc;
  acc.Add(0, 0, 1.0, 1.0);
  acc.Clear();
  QueryDocTable table(0.5);
  acc.Flush(table);
  EXPECT_EQ(table.size(), 0u);
}

}  // namespace
}  // namespace microbrowse
