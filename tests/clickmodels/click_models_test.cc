// Copyright 2026 The Microbrowse Authors
//
// Behavioural tests for the macro click models: generative semantics,
// conditional/marginal probability identities, and EM / MLE parameter
// recovery from logs simulated by the ground-truth model.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "clickmodels/cascade.h"
#include "clickmodels/ccm.h"
#include "clickmodels/dbn.h"
#include "clickmodels/dcm.h"
#include "clickmodels/evaluation.h"
#include "clickmodels/pbm.h"
#include "clickmodels/simulator.h"
#include "clickmodels/ubm.h"

namespace microbrowse {
namespace {

SerpSimulatorOptions SmallSimOptions() {
  SerpSimulatorOptions options;
  options.num_queries = 20;
  options.docs_per_query = 12;
  options.positions = 6;
  options.num_sessions = 60000;
  options.seed = 7;
  return options;
}

/// Mean absolute error between a fitted attractiveness table and the truth
/// over all (query, doc) pairs of the ground truth.
double AttractionMae(const QueryDocTable& fitted, const SerpGroundTruth& truth) {
  double total = 0.0;
  int count = 0;
  for (size_t q = 0; q < truth.query_docs.size(); ++q) {
    for (int32_t doc : truth.query_docs[q]) {
      total += std::fabs(fitted.Get(static_cast<int32_t>(q), doc) -
                         truth.attraction.Get(static_cast<int32_t>(q), doc));
      ++count;
    }
  }
  return total / count;
}

// --- Cascade

TEST(CascadeModelTest, SimulationStopsAtFirstClick) {
  QueryDocTable attraction(0.5);
  CascadeModel model(attraction);
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    Session session;
    session.results.assign(8, SessionResult{});
    model.SimulateClicks(&session, &rng);
    EXPECT_LE(session.num_clicks(), 1);
  }
}

TEST(CascadeModelTest, ConditionalProbsZeroAfterClick) {
  QueryDocTable attraction(0.3);
  CascadeModel model(attraction);
  Session session;
  session.results = {SessionResult{0, false}, SessionResult{1, true}, SessionResult{2, false}};
  const auto probs = model.ConditionalClickProbs(session);
  EXPECT_NEAR(probs[0], 0.3, 1e-12);
  EXPECT_NEAR(probs[1], 0.3, 1e-12);
  EXPECT_NEAR(probs[2], 0.0, 1e-12);
}

TEST(CascadeModelTest, MarginalProbsDecayGeometrically) {
  QueryDocTable attraction(0.4);
  CascadeModel model(attraction);
  Session session;
  session.results.assign(4, SessionResult{});
  const auto probs = model.MarginalClickProbs(session);
  EXPECT_NEAR(probs[0], 0.4, 1e-12);
  EXPECT_NEAR(probs[1], 0.6 * 0.4, 1e-12);
  EXPECT_NEAR(probs[2], 0.36 * 0.4, 1e-12);
}

TEST(CascadeModelTest, RecoversAttractiveness) {
  const auto options = SmallSimOptions();
  Rng rng(options.seed);
  const SerpGroundTruth truth = MakeSerpGroundTruth(options, &rng);
  const CascadeModel generator(truth.attraction);
  auto log = SimulateSerpLog(options, truth, generator, &rng);
  ASSERT_TRUE(log.ok());

  CascadeModel fitted;
  ASSERT_TRUE(fitted.Fit(*log).ok());
  EXPECT_LT(AttractionMae(fitted.attraction(), truth), 0.05);
}

TEST(CascadeModelTest, FitRejectsEmptyLog) {
  CascadeModel model;
  EXPECT_EQ(model.Fit(ClickLog{}).code(), StatusCode::kInvalidArgument);
}

// --- PBM

TEST(PbmTest, SimulationMatchesMarginals) {
  PositionBasedModel model({0.9, 0.5, 0.2}, QueryDocTable(0.6));
  Rng rng(11);
  std::vector<int> clicks(3, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    Session session;
    session.results.assign(3, SessionResult{});
    model.SimulateClicks(&session, &rng);
    for (int p = 0; p < 3; ++p) clicks[p] += session.results[p].clicked ? 1 : 0;
  }
  EXPECT_NEAR(clicks[0] / double(n), 0.9 * 0.6, 0.01);
  EXPECT_NEAR(clicks[1] / double(n), 0.5 * 0.6, 0.01);
  EXPECT_NEAR(clicks[2] / double(n), 0.2 * 0.6, 0.01);
}

TEST(PbmTest, EmRecoversPositionCurveShape) {
  const auto options = SmallSimOptions();
  Rng rng(options.seed);
  const SerpGroundTruth truth = MakeSerpGroundTruth(options, &rng);
  const std::vector<double> gamma = {0.95, 0.75, 0.55, 0.4, 0.28, 0.2};
  const PositionBasedModel generator(gamma, truth.attraction);
  auto log = SimulateSerpLog(options, truth, generator, &rng);
  ASSERT_TRUE(log.ok());

  PositionBasedModel fitted;
  ASSERT_TRUE(fitted.Fit(*log).ok());
  // PBM's gamma/alpha split has a well-known scale ambiguity, so check the
  // monotone shape and the ratios rather than absolute levels.
  const auto& learned = fitted.position_probs();
  ASSERT_EQ(learned.size(), gamma.size());
  for (size_t i = 1; i < learned.size(); ++i) {
    EXPECT_LT(learned[i], learned[i - 1]) << "position " << i;
  }
  EXPECT_NEAR(learned[3] / learned[0], gamma[3] / gamma[0], 0.12);
}

TEST(PbmTest, ConditionalEqualsMarginal) {
  PositionBasedModel model({0.8, 0.4}, QueryDocTable(0.5));
  Session session;
  session.results = {SessionResult{0, true}, SessionResult{1, false}};
  EXPECT_EQ(model.ConditionalClickProbs(session), model.MarginalClickProbs(session));
}

// --- DCM

TEST(DcmTest, SimulationAllowsMultipleClicks) {
  DependentClickModel model(QueryDocTable(0.7), {0.9, 0.9, 0.9, 0.9});
  Rng rng(13);
  int multi = 0;
  for (int i = 0; i < 2000; ++i) {
    Session session;
    session.results.assign(4, SessionResult{});
    model.SimulateClicks(&session, &rng);
    multi += session.num_clicks() > 1 ? 1 : 0;
  }
  EXPECT_GT(multi, 500);
}

TEST(DcmTest, LambdaRecoveryShape) {
  const auto options = SmallSimOptions();
  Rng rng(options.seed);
  const SerpGroundTruth truth = MakeSerpGroundTruth(options, &rng);
  const std::vector<double> lambdas = {0.8, 0.7, 0.6, 0.5, 0.4, 0.3};
  const DependentClickModel generator(truth.attraction, lambdas);
  auto log = SimulateSerpLog(options, truth, generator, &rng);
  ASSERT_TRUE(log.ok());

  DependentClickModel fitted;
  ASSERT_TRUE(fitted.Fit(*log).ok());
  // The approximate MLE biases lambda, but the decreasing shape must hold.
  const auto& learned = fitted.lambdas();
  EXPECT_GT(learned[0], learned[4]);
}

TEST(DcmTest, ConditionalProbsAfterSkipStayPositive) {
  DependentClickModel model(QueryDocTable(0.3), {0.5, 0.5, 0.5});
  Session session;
  session.results = {SessionResult{0, false}, SessionResult{1, false},
                     SessionResult{2, false}};
  const auto probs = model.ConditionalClickProbs(session);
  for (double p : probs) EXPECT_GT(p, 0.0);
}

// --- UBM

TEST(UbmTest, RecoversAttractivenessWell) {
  const auto options = SmallSimOptions();
  Rng rng(options.seed);
  const SerpGroundTruth truth = MakeSerpGroundTruth(options, &rng);
  std::vector<std::vector<double>> gammas(options.positions);
  for (int i = 0; i < options.positions; ++i) {
    gammas[i].assign(i + 1, 0.0);
    for (int d = 0; d <= i; ++d) {
      gammas[i][d] = 0.9 * std::pow(0.75, d);  // Decay with click distance.
    }
  }
  const UserBrowsingModel generator(gammas, truth.attraction);
  auto log = SimulateSerpLog(options, truth, generator, &rng);
  ASSERT_TRUE(log.ok());

  UserBrowsingModel fitted;
  ASSERT_TRUE(fitted.Fit(*log).ok());
  // UBM's (position x distance) examination grid has many parameters, so
  // the attraction estimates carry more shrinkage noise than PBM's.
  EXPECT_LT(AttractionMae(fitted.attraction(), truth), 0.12);
}

TEST(UbmTest, MarginalSumsBelowOnePerPosition) {
  UserBrowsingModel model({{0.9}, {0.8, 0.6}}, QueryDocTable(0.5));
  Session session;
  session.results = {SessionResult{0, false}, SessionResult{1, false}};
  for (double p : model.MarginalClickProbs(session)) {
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
  }
}

// --- DBN

TEST(DbnTest, SatisfactionStopsSession) {
  // Satisfaction 1: after the first click everything later is unclicked.
  DbnModel model(QueryDocTable(0.6), QueryDocTable(1.0), /*gamma=*/1.0);
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    Session session;
    session.results.assign(6, SessionResult{});
    model.SimulateClicks(&session, &rng);
    EXPECT_LE(session.num_clicks(), 1);
  }
}

TEST(DbnTest, GammaZeroMeansOnlyFirstPosition) {
  DbnModel model(QueryDocTable(0.5), QueryDocTable(0.0), /*gamma=*/0.0);
  Rng rng(19);
  for (int i = 0; i < 500; ++i) {
    Session session;
    session.results.assign(4, SessionResult{});
    model.SimulateClicks(&session, &rng);
    for (size_t p = 1; p < 4; ++p) EXPECT_FALSE(session.results[p].clicked);
  }
}

TEST(DbnTest, EmRecoversAttractiveness) {
  const auto options = SmallSimOptions();
  Rng rng(options.seed);
  const SerpGroundTruth truth = MakeSerpGroundTruth(options, &rng);
  const DbnModel generator(truth.attraction, QueryDocTable(0.4), /*gamma=*/0.85);
  auto log = SimulateSerpLog(options, truth, generator, &rng);
  ASSERT_TRUE(log.ok());

  DbnOptions fit_options;
  fit_options.em_iterations = 20;
  DbnModel fitted(fit_options);
  ASSERT_TRUE(fitted.Fit(*log).ok());
  EXPECT_LT(AttractionMae(fitted.attraction(), truth), 0.08);
  EXPECT_NEAR(fitted.gamma(), 0.85, 0.1);
}

TEST(SdbnTest, ClosedFormRecovery) {
  const auto options = SmallSimOptions();
  Rng rng(options.seed);
  const SerpGroundTruth truth = MakeSerpGroundTruth(options, &rng);
  const SimplifiedDbnModel generator(truth.attraction, QueryDocTable(0.5));
  auto log = SimulateSerpLog(options, truth, generator, &rng);
  ASSERT_TRUE(log.ok());

  SimplifiedDbnModel fitted;
  ASSERT_TRUE(fitted.Fit(*log).ok());
  // The SDBN MLE discards clickless sessions (it learns nothing from
  // them), a known selection bias that inflates attractiveness for weak
  // documents; the recovery bound reflects it.
  EXPECT_LT(AttractionMae(fitted.attraction(), truth), 0.15);
}

// --- CCM

TEST(CcmTest, AbandonmentLimitsDeepClicks) {
  // alpha1 = 0: the user abandons after any unclicked result.
  ClickChainModel model(QueryDocTable(0.3), /*alpha1=*/0.0, /*alpha2=*/0.5, /*alpha3=*/0.9);
  Rng rng(23);
  for (int i = 0; i < 500; ++i) {
    Session session;
    session.results.assign(5, SessionResult{});
    model.SimulateClicks(&session, &rng);
    // A skip ends the session, so clicks must form a prefix.
    bool skipped = false;
    for (const auto& result : session.results) {
      if (skipped) {
        EXPECT_FALSE(result.clicked);
      }
      if (!result.clicked) skipped = true;
    }
  }
}

TEST(CcmTest, FitRecoversRelevanceOrdering) {
  const auto options = SmallSimOptions();
  Rng rng(options.seed);
  const SerpGroundTruth truth = MakeSerpGroundTruth(options, &rng);
  const ClickChainModel generator(truth.attraction, 0.75, 0.4, 0.85);
  auto log = SimulateSerpLog(options, truth, generator, &rng);
  ASSERT_TRUE(log.ok());

  ClickChainModel fitted;
  ASSERT_TRUE(fitted.Fit(*log).ok());
  EXPECT_LT(AttractionMae(fitted.relevance(), truth), 0.09);
  EXPECT_NEAR(fitted.alpha1(), 0.75, 0.15);
}

// --- Cross-model evaluation

TEST(EvaluationTest, TrueModelBeatsMismatchedModelOnLikelihood) {
  const auto options = SmallSimOptions();
  Rng rng(options.seed);
  const SerpGroundTruth truth = MakeSerpGroundTruth(options, &rng);
  const DbnModel generator(truth.attraction, QueryDocTable(0.5), /*gamma=*/0.8);
  auto log = SimulateSerpLog(options, truth, generator, &rng);
  ASSERT_TRUE(log.ok());

  DbnModel dbn;
  ASSERT_TRUE(dbn.Fit(*log).ok());
  CascadeModel cascade;
  ASSERT_TRUE(cascade.Fit(*log).ok());

  const auto dbn_eval = EvaluateClickModel(dbn, *log);
  const auto cascade_eval = EvaluateClickModel(cascade, *log);
  // Cascade cannot express multi-click sessions; DBN should dominate.
  EXPECT_GT(dbn_eval.avg_log_likelihood, cascade_eval.avg_log_likelihood);
  EXPECT_LT(dbn_eval.perplexity, cascade_eval.perplexity);
}

TEST(EvaluationTest, PerplexityIsAtLeastOne) {
  const auto options = SmallSimOptions();
  Rng rng(1);
  const SerpGroundTruth truth = MakeSerpGroundTruth(options, &rng);
  const PositionBasedModel generator({0.9, 0.6, 0.4, 0.3, 0.2, 0.1}, truth.attraction);
  SerpSimulatorOptions small = options;
  small.num_sessions = 5000;
  auto log = SimulateSerpLog(small, truth, generator, &rng);
  ASSERT_TRUE(log.ok());
  PositionBasedModel fitted;
  ASSERT_TRUE(fitted.Fit(*log).ok());
  const auto eval = EvaluateClickModel(fitted, *log);
  EXPECT_GE(eval.perplexity, 1.0);
  for (double p : eval.perplexity_at_rank) EXPECT_GE(p, 1.0);
  EXPECT_GT(eval.ctr_mse, 0.0);
  EXPECT_LT(eval.ctr_mse, 0.25);
}

TEST(SimulatorTest, RankedServingInducesPositionBiasThatPbmCorrects) {
  // Under ranked serving, naive per-doc CTR conflates relevance with the
  // position the engine gave the doc; PBM's EM separates them (the
  // relevance-vs-examination point of reference [16]).
  SerpSimulatorOptions options = SmallSimOptions();
  options.ranked_serving_prob = 0.8;
  Rng rng(options.seed);
  const SerpGroundTruth truth = MakeSerpGroundTruth(options, &rng);
  const std::vector<double> gamma = {0.95, 0.7, 0.5, 0.35, 0.25, 0.18};
  const PositionBasedModel generator(gamma, truth.attraction);
  auto log = SimulateSerpLog(options, truth, generator, &rng);
  ASSERT_TRUE(log.ok());

  // Naive estimate: clicks / impressions per (query, doc).
  QueryDocAccumulator naive_acc;
  for (const auto& session : log->sessions) {
    for (const auto& result : session.results) {
      naive_acc.Add(session.query_id, result.doc_id, result.clicked ? 1.0 : 0.0, 1.0);
    }
  }
  QueryDocTable naive(0.5);
  naive_acc.Flush(naive, 1.0, 0.5);

  PositionBasedModel fitted;
  ASSERT_TRUE(fitted.Fit(*log).ok());

  // Compare rank correlations against the truth per query: count
  // concordant doc pairs.
  auto concordance = [&](const QueryDocTable& estimate) {
    int64_t concordant = 0, total = 0;
    for (size_t q = 0; q < truth.query_docs.size(); ++q) {
      const auto& docs = truth.query_docs[q];
      for (size_t i = 0; i + 1 < docs.size(); ++i) {
        for (size_t j = i + 1; j < docs.size(); ++j) {
          const double true_diff = truth.attraction.Get(q, docs[i]) -
                                   truth.attraction.Get(q, docs[j]);
          const double est_diff =
              estimate.Get(q, docs[i]) - estimate.Get(q, docs[j]);
          if (true_diff == 0.0 || est_diff == 0.0) continue;
          ++total;
          concordant += (true_diff > 0) == (est_diff > 0) ? 1 : 0;
        }
      }
    }
    return static_cast<double>(concordant) / static_cast<double>(total);
  };
  // The model-corrected estimate orders docs better than naive CTR.
  EXPECT_GT(concordance(fitted.attraction()), concordance(naive));
}

TEST(SimulatorTest, RejectsInvalidConfig) {
  SerpSimulatorOptions options;
  options.positions = 50;
  options.docs_per_query = 10;
  Rng rng(1);
  const SerpGroundTruth truth = MakeSerpGroundTruth(options, &rng);
  CascadeModel model;
  EXPECT_FALSE(SimulateSerpLog(options, truth, model, &rng).ok());
}

TEST(SimulatorTest, LogHasRequestedShape) {
  SerpSimulatorOptions options = SmallSimOptions();
  options.num_sessions = 500;
  Rng rng(2);
  const SerpGroundTruth truth = MakeSerpGroundTruth(options, &rng);
  const CascadeModel model(truth.attraction);
  auto log = SimulateSerpLog(options, truth, model, &rng);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->sessions.size(), 500u);
  EXPECT_EQ(log->max_positions, options.positions);
  for (const auto& session : log->sessions) {
    EXPECT_LT(session.query_id, options.num_queries);
    EXPECT_EQ(static_cast<int>(session.results.size()), options.positions);
  }
}

}  // namespace
}  // namespace microbrowse
