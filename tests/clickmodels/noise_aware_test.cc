// Copyright 2026 The Microbrowse Authors

#include "clickmodels/noise_aware.h"

#include <gtest/gtest.h>

#include <cmath>

#include "clickmodels/evaluation.h"
#include "clickmodels/pbm.h"
#include "clickmodels/simulator.h"

namespace microbrowse {
namespace {

SerpSimulatorOptions SimOptions() {
  SerpSimulatorOptions options;
  options.num_queries = 20;
  options.docs_per_query = 12;
  options.positions = 6;
  options.num_sessions = 60000;
  options.seed = 77;
  return options;
}

NoiseAwareClickModel MakeGenerator(const SerpGroundTruth& truth, double eta) {
  const std::vector<double> gamma = {0.9, 0.7, 0.5, 0.35, 0.25, 0.18};
  const std::vector<double> beta = {0.3, 0.3, 0.3, 0.3, 0.3, 0.3};
  return NoiseAwareClickModel(gamma, truth.attraction, eta, beta);
}

TEST(NoiseAwareTest, SimulationMixesChannels) {
  SerpSimulatorOptions options = SimOptions();
  Rng rng(options.seed);
  const SerpGroundTruth truth = MakeSerpGroundTruth(options, &rng);
  const NoiseAwareClickModel generator = MakeGenerator(truth, 0.5);
  Session session;
  session.query_id = 0;
  session.results.assign(6, SessionResult{truth.query_docs[0][0], false});
  int clicks = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    Session copy = session;
    generator.SimulateClicks(&copy, &rng);
    clicks += copy.num_clicks();
  }
  const auto marginal = generator.MarginalClickProbs(session);
  double expected = 0.0;
  for (double p : marginal) expected += p;
  EXPECT_NEAR(clicks / double(n), expected, 0.05);
}

TEST(NoiseAwareTest, RecoversNoiseFraction) {
  SerpSimulatorOptions options = SimOptions();
  Rng rng(options.seed);
  const SerpGroundTruth truth = MakeSerpGroundTruth(options, &rng);
  const NoiseAwareClickModel generator = MakeGenerator(truth, 0.25);
  auto log = SimulateSerpLog(options, truth, generator, &rng);
  ASSERT_TRUE(log.ok());

  NoiseAwareClickModel fitted;
  ASSERT_TRUE(fitted.Fit(*log).ok());
  EXPECT_GT(fitted.eta(), 0.08);  // Detects substantial noise...
  EXPECT_LT(fitted.eta(), 0.55);  // ...without absorbing everything.
}

TEST(NoiseAwareTest, BeatsPlainPbmUnderHeavyNoise) {
  SerpSimulatorOptions options = SimOptions();
  Rng rng(options.seed);
  const SerpGroundTruth truth = MakeSerpGroundTruth(options, &rng);
  const NoiseAwareClickModel generator = MakeGenerator(truth, 0.35);
  auto train = SimulateSerpLog(options, truth, generator, &rng);
  auto test = SimulateSerpLog(options, truth, generator, &rng);
  ASSERT_TRUE(train.ok());
  ASSERT_TRUE(test.ok());

  NoiseAwareClickModel ncm;
  ASSERT_TRUE(ncm.Fit(*train).ok());
  PositionBasedModel pbm;
  ASSERT_TRUE(pbm.Fit(*train).ok());

  const auto ncm_eval = EvaluateClickModel(ncm, *test);
  const auto pbm_eval = EvaluateClickModel(pbm, *test);
  EXPECT_GE(ncm_eval.avg_log_likelihood, pbm_eval.avg_log_likelihood - 1e-6);
}

TEST(NoiseAwareTest, ZeroNoiseDegeneratesToPbmShape) {
  SerpSimulatorOptions options = SimOptions();
  options.num_sessions = 40000;
  Rng rng(options.seed);
  const SerpGroundTruth truth = MakeSerpGroundTruth(options, &rng);
  const std::vector<double> gamma = {0.9, 0.7, 0.5, 0.35, 0.25, 0.18};
  const PositionBasedModel generator(gamma, truth.attraction);
  auto log = SimulateSerpLog(options, truth, generator, &rng);
  ASSERT_TRUE(log.ok());

  NoiseAwareClickModel fitted;
  ASSERT_TRUE(fitted.Fit(*log).ok());
  // On noise-free data, the learned position curve keeps its decay.
  for (size_t i = 1; i < fitted.position_probs().size(); ++i) {
    EXPECT_LT(fitted.position_probs()[i], fitted.position_probs()[i - 1] + 0.05);
  }
}

TEST(NoiseAwareTest, FitRejectsEmptyLog) {
  NoiseAwareClickModel model;
  EXPECT_FALSE(model.Fit(ClickLog{}).ok());
}

}  // namespace
}  // namespace microbrowse
