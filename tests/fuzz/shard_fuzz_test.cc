// Copyright 2026 The Microbrowse Authors
//
// Fuzz-smoke coverage for the sharded corpus reader (io/corpus_shards.cc)
// feeding the streaming trainers. Properties:
//   truncation   — a shard cut at arbitrary byte boundaries either fails the
//                  strict stream or is skipped whole under skip_and_log,
//                  with the report counting it; never a crash, never a
//                  silently shrunken corpus without accounting;
//   byte soup    — shard files full of random bytes never crash resolution
//                  or the streaming stats/CSR builders;
//   set mutation — randomly deleting, duplicating-with-mixed-count or
//                  renaming shards makes ResolveCorpusShards fail with a
//                  clean Status, never resolve a partial set.
// Deterministic seeds; tier-1-friendly sizes (label fuzz-smoke).

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "corpus/generator.h"
#include "io/corpus_shards.h"
#include "io/serialization.h"

namespace microbrowse {
namespace {

std::string FuzzDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/shard_fuzz_" +
                          std::to_string(::getpid()) + "_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  ASSERT_TRUE(out.good()) << path;
}

/// Writes a small real 4-shard corpus and returns its base path.
std::string WriteShardSet(const std::string& dir, uint64_t seed) {
  AdCorpusOptions options;
  options.num_adgroups = 24;
  options.seed = seed;
  auto generated = GenerateAdCorpus(options);
  EXPECT_TRUE(generated.ok());
  const std::string base = dir + "/corpus.tsv";
  EXPECT_TRUE(SaveAdCorpusSharded(generated->corpus, base, 4).ok());
  return base;
}

LoadOptions Salvage() {
  LoadOptions options;
  options.recovery = LoadOptions::Recovery::kSkipAndLog;
  return options;
}

TEST(ShardFuzzTest, TruncatedShardNeverCrashesAndIsAlwaysAccounted) {
  const std::string dir = FuzzDir("trunc");
  const std::string base = WriteShardSet(dir, 101);
  const std::string victim = ShardPath(base, 2, 4);
  const std::string bytes = ReadAll(victim);
  ASSERT_GT(bytes.size(), 0u);

  Rng rng(20260807);
  for (int iteration = 0; iteration < 60; ++iteration) {
    const size_t len = rng.NextIndex(bytes.size());
    WriteAll(victim, bytes.substr(0, len));
    auto resolved = ResolveCorpusShards(base);
    ASSERT_TRUE(resolved.ok());

    // Strict mode: a damaged shard either fails the stream (naming the
    // shard) or — for clean-prefix truncations of a line-oriented format —
    // loads fewer adgroups, which the report must reflect.
    ShardLoadReport strict_report;
    auto strict = LoadShardedAdCorpus(*resolved, {}, &strict_report);
    if (!strict.ok()) {
      EXPECT_NE(strict.status().message().find("00002-of-00004"), std::string::npos)
          << "truncation to " << len;
    }

    // Salvage mode must always produce a corpus and a consistent report.
    ShardLoadReport report;
    auto salvaged = LoadShardedAdCorpus(*resolved, Salvage(), &report);
    ASSERT_TRUE(salvaged.ok()) << "truncation to " << len;
    EXPECT_EQ(report.shards_total, 4u);
    EXPECT_EQ(report.shards_loaded + report.shards_skipped, 4u);
    if (report.shards_skipped > 0) {
      EXPECT_FALSE(report.first_error.empty());
    }
    EXPECT_EQ(static_cast<int64_t>(salvaged->adgroups.size()), report.adgroups);

    // The streaming builders ride the same path: never crash, always ok in
    // salvage mode.
    auto stats = BuildFeatureStatsSharded(*resolved, {}, {}, Salvage(), nullptr);
    EXPECT_TRUE(stats.ok()) << "truncation to " << len;
  }
  WriteAll(victim, bytes);
  ASSERT_TRUE(LoadShardedAdCorpus(*ResolveCorpusShards(base), {}).ok());
}

TEST(ShardFuzzTest, ByteSoupShardsNeverCrashTheStreamingBuilders) {
  const std::string dir = FuzzDir("soup");
  const std::string base = WriteShardSet(dir, 202);
  Rng rng(4242);
  for (int iteration = 0; iteration < 80; ++iteration) {
    // Overwrite a random shard with garbage — sometimes headed by a
    // plausible-looking first line so the row parser engages.
    const size_t victim_index = rng.NextIndex(4);
    const std::string victim = ShardPath(base, victim_index, 4);
    const size_t len = rng.NextIndex(600);
    std::string soup;
    if (iteration % 2 == 0) soup = "adgroup\t";
    for (size_t i = 0; i < len; ++i) {
      soup.push_back(static_cast<char>(rng.NextIndex(256)));
    }
    WriteAll(victim, soup);

    auto resolved = ResolveCorpusShards(base);
    ASSERT_TRUE(resolved.ok());
    ShardLoadReport report;
    auto stats = BuildFeatureStatsSharded(*resolved, {}, {}, Salvage(), &report);
    ASSERT_TRUE(stats.ok()) << "iteration " << iteration;
    EXPECT_EQ(report.shards_loaded + report.shards_skipped, 4u);

    ShardLoadReport csr_report;
    FeatureStatsDb empty_db;
    auto csr = BuildCoupledCsrSharded(*resolved, empty_db, ClassifierConfig::M1(), 7, {},
                                      Salvage(), &csr_report);
    ASSERT_TRUE(csr.ok()) << "iteration " << iteration;

    // Restore the victim for the next round.
    AdCorpusOptions options;
    options.num_adgroups = 24;
    options.seed = 202;
    auto regenerated = GenerateAdCorpus(options);
    ASSERT_TRUE(regenerated.ok());
    ASSERT_TRUE(SaveAdCorpusSharded(regenerated->corpus, base, 4).ok());
  }
}

TEST(ShardFuzzTest, MutatedShardSetsResolveCleanlyOrFailCleanly) {
  Rng rng(909);
  for (int iteration = 0; iteration < 40; ++iteration) {
    const std::string dir = FuzzDir("mutate_" + std::to_string(iteration));
    const std::string base = WriteShardSet(dir, 300 + static_cast<uint64_t>(iteration));
    const size_t victim_index = rng.NextIndex(4);
    const std::string victim = ShardPath(base, victim_index, 4);
    const int mutation = static_cast<int>(rng.NextIndex(3));
    StatusCode want = StatusCode::kOk;
    switch (mutation) {
      case 0:  // Delete a shard: a gap the resolver must name.
        ASSERT_TRUE(std::filesystem::remove(victim));
        want = StatusCode::kNotFound;
        break;
      case 1:  // Overlapping generation with a different count.
        std::filesystem::copy_file(victim, ShardPath(base, victim_index, 7));
        want = StatusCode::kFailedPrecondition;
        break;
      case 2:  // Shard index out of range for its claimed count.
        std::filesystem::copy_file(victim, ShardPath(base, 9, 4));
        want = StatusCode::kFailedPrecondition;
        break;
    }
    auto resolved = ResolveCorpusShards(base);
    ASSERT_FALSE(resolved.ok()) << "iteration " << iteration << " mutation " << mutation;
    EXPECT_EQ(resolved.status().code(), want)
        << "iteration " << iteration << " mutation " << mutation << ": "
        << resolved.status().message();
  }
}

TEST(ShardFuzzTest, BitFlippedRowsAreSkippedRowWiseWithAccurateCounts) {
  const std::string dir = FuzzDir("flip");
  const std::string base = WriteShardSet(dir, 505);
  const std::string victim = ShardPath(base, 1, 4);
  const std::string bytes = ReadAll(victim);
  Rng rng(77);
  for (int iteration = 0; iteration < 60; ++iteration) {
    std::string damaged = bytes;
    const size_t pos = rng.NextIndex(damaged.size());
    const int bit = static_cast<int>(rng.NextIndex(8));
    damaged[pos] = static_cast<char>(damaged[pos] ^ (1 << bit));
    WriteAll(victim, damaged);
    auto resolved = ResolveCorpusShards(base);
    ASSERT_TRUE(resolved.ok());
    ShardLoadReport report;
    auto corpus = LoadShardedAdCorpus(*resolved, Salvage(), &report);
    ASSERT_TRUE(corpus.ok()) << "byte " << pos << " bit " << bit;
    // Whatever the row recovery decided, the corpus the trainer sees and
    // the report shown to the operator must agree.
    EXPECT_EQ(static_cast<int64_t>(corpus->adgroups.size()), report.adgroups)
        << "byte " << pos << " bit " << bit;
    EXPECT_EQ(report.shards_loaded + report.shards_skipped, report.shards_total);
  }
}

}  // namespace
}  // namespace microbrowse
