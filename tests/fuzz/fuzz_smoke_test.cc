// Copyright 2026 The Microbrowse Authors
//
// Seeded random-input smoke fuzzing for the two hand-written parsers: the
// newline-JSON serve protocol codec and the RFC 4180 CSV record codec.
// Two properties per codec:
//   round-trip  — serialize(parse(serialize(x))) is a fixpoint, and the
//                 parsed fields equal the originals byte for byte;
//   robustness  — arbitrary byte soup never crashes the parser; it either
//                 parses or returns InvalidArgument.
// Deterministic seeds, a few thousand cases per property: this is the
// tier-1-friendly smoke tier (label fuzz-smoke), not a coverage-guided
// fuzzer.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/random.h"
#include "serve/protocol.h"

namespace microbrowse {
namespace {

/// Random byte string, biased toward JSON/CSV metacharacters so the
/// interesting parser branches actually fire.
std::string RandomBytes(Rng& rng, size_t max_len) {
  static constexpr char kSpicy[] = "\"\\,{}[]:\n\r\t '|";
  const size_t len = rng.NextIndex(max_len + 1);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    switch (rng.NextIndex(4)) {
      case 0:
        out.push_back(kSpicy[rng.NextIndex(sizeof(kSpicy) - 1)]);
        break;
      case 1:
        out.push_back(static_cast<char>(rng.NextIndex(256)));
        break;
      default:
        out.push_back(static_cast<char>('a' + rng.NextIndex(26)));
        break;
    }
  }
  return out;
}

std::string RandomKey(Rng& rng) {
  const size_t len = 1 + rng.NextIndex(8);
  std::string out;
  for (size_t i = 0; i < len; ++i) out.push_back(static_cast<char>('a' + rng.NextIndex(26)));
  return out;
}

std::string SerializeSorted(const std::map<std::string, std::string>& fields) {
  serve::JsonWriter writer;
  for (const auto& [key, value] : fields) writer.String(key, value);
  return writer.Finish();
}

TEST(FuzzSmokeTest, ProtocolRoundTripIsFixpoint) {
  Rng rng(2026);
  for (int iteration = 0; iteration < 3000; ++iteration) {
    std::map<std::string, std::string> fields;
    const size_t n_fields = rng.NextIndex(6);
    for (size_t f = 0; f < n_fields; ++f) {
      fields[RandomKey(rng)] = RandomBytes(rng, 40);
    }
    const std::string line = SerializeSorted(fields);
    auto parsed = serve::ParseRequest(line);
    ASSERT_TRUE(parsed.ok()) << line << " -> " << parsed.status().ToString();
    std::map<std::string, std::string> round_trip;
    for (const auto& [key, value] : parsed->fields) {
      round_trip[std::string(key)] = std::string(value);
    }
    ASSERT_EQ(round_trip, fields) << line;
    // Parse-then-serialize fixpoint (fields are emitted in sorted order on
    // both sides, so the bytes must match exactly).
    EXPECT_EQ(SerializeSorted(round_trip), line);
  }
}

TEST(FuzzSmokeTest, ProtocolNumberAndBoolValuesSurviveRoundTrip) {
  Rng rng(7);
  for (int iteration = 0; iteration < 2000; ++iteration) {
    const double number = rng.Gaussian(0.0, 1e6);
    const bool flag = rng.Bernoulli(0.5);
    const int64_t integer =
        static_cast<int64_t>(rng.NextIndex(1u << 30)) * (flag ? 1 : -1);
    serve::JsonWriter writer;
    writer.Number("x", number).Bool("flag", flag).Int("n", integer);
    auto parsed = serve::ParseRequest(writer.Finish());
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    // Literal text is preserved, so re-parsing gives back the exact value.
    EXPECT_EQ(std::stod(std::string(parsed->Get("x"))), number);
    EXPECT_EQ(parsed->Get("flag"), flag ? "true" : "false");
    EXPECT_EQ(std::stoll(std::string(parsed->Get("n"))), integer);
  }
}

TEST(FuzzSmokeTest, ProtocolParserNeverCrashesOnByteSoup) {
  Rng rng(99);
  int parsed_ok = 0;
  for (int iteration = 0; iteration < 5000; ++iteration) {
    std::string line = RandomBytes(rng, 64);
    // Half the time, wrap in braces so the object-body paths get deeper.
    if (rng.Bernoulli(0.5)) line = "{" + line + "}";
    auto parsed = serve::ParseRequest(line);
    if (parsed.ok()) ++parsed_ok;  // Either outcome is fine; crashing is not.
  }
  // Sanity: the generator is hostile enough that most inputs are invalid.
  EXPECT_LT(parsed_ok, 1000);
}

TEST(FuzzSmokeTest, ProtocolMutatedValidLinesNeverCrash) {
  Rng rng(41);
  for (int iteration = 0; iteration < 3000; ++iteration) {
    serve::JsonWriter writer;
    writer.String("type", "score_pair").String("a", RandomBytes(rng, 20)).Number("x", 1.5);
    std::string line = writer.Finish();
    // Flip, insert or delete a couple of bytes.
    for (int mutation = 0; mutation < 2 && !line.empty(); ++mutation) {
      const size_t pos = rng.NextIndex(line.size());
      switch (rng.NextIndex(3)) {
        case 0: line[pos] = static_cast<char>(rng.NextIndex(256)); break;
        case 1: line.insert(pos, 1, static_cast<char>(rng.NextIndex(256))); break;
        default: line.erase(pos, 1); break;
      }
    }
    (void)serve::ParseRequest(line);  // Must return, never crash.
  }
}

std::string JoinCsv(const std::vector<std::string>& fields) {
  std::string record;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) record.push_back(',');
    record += CsvEscape(fields[i]);
  }
  return record;
}

TEST(FuzzSmokeTest, CsvRoundTripRecoversFields) {
  Rng rng(1234);
  for (int iteration = 0; iteration < 3000; ++iteration) {
    std::vector<std::string> fields;
    const size_t n_fields = 1 + rng.NextIndex(6);
    for (size_t f = 0; f < n_fields; ++f) fields.push_back(RandomBytes(rng, 30));
    const std::string record = JoinCsv(fields);
    auto parsed = ParseCsvRecord(record);
    ASSERT_TRUE(parsed.ok()) << record << " -> " << parsed.status().ToString();
    ASSERT_EQ(*parsed, fields) << record;
    // Escape-then-parse fixpoint on the serialized form too.
    EXPECT_EQ(JoinCsv(*parsed), record);
  }
}

TEST(FuzzSmokeTest, CsvParserNeverCrashesOnByteSoup) {
  Rng rng(555);
  for (int iteration = 0; iteration < 5000; ++iteration) {
    (void)ParseCsvRecord(RandomBytes(rng, 64));  // Must return, never crash.
  }
}

TEST(FuzzSmokeTest, CsvMalformedInputsAreRejectedNotMangled) {
  // Hand-picked invalids: the fuzz loops above rarely hit these exact
  // shapes, and each must produce InvalidArgument, not a wrong parse.
  for (const char* record : {"\"unterminated", "\"a\"b", "a\"b", "\"a\"\"", "say \"hi\""}) {
    auto parsed = ParseCsvRecord(record);
    EXPECT_FALSE(parsed.ok()) << record;
  }
  // And edge-case valids.
  auto empty = ParseCsvRecord("");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(*empty, std::vector<std::string>{""});
  auto trailing = ParseCsvRecord("a,");
  ASSERT_TRUE(trailing.ok());
  EXPECT_EQ(*trailing, (std::vector<std::string>{"a", ""}));
  auto quoted_newline = ParseCsvRecord("\"a\nb\",c");
  ASSERT_TRUE(quoted_newline.ok());
  EXPECT_EQ(*quoted_newline, (std::vector<std::string>{"a\nb", "c"}));
}

}  // namespace
}  // namespace microbrowse
