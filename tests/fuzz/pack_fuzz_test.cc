// Copyright 2026 The Microbrowse Authors
//
// Fuzz-smoke coverage for the mbpack header/section parser (pack/format.h,
// pack/pack_reader.cc). Three properties:
//   truncation  — a valid pack cut at *every* byte boundary is rejected at
//                 open, never crashes, and never opens successfully;
//   byte soup   — arbitrary bytes (with and without a valid magic prefix)
//                 never crash the open path;
//   bit flips   — seeded random corruption of a valid artifact pack is
//                 rejected, and the artifact loaders built on top
//                 (LoadStatsPack / LoadClassifierPack) surface an error
//                 instead of crashing or returning garbage.
// Deterministic seeds; tier-1-friendly sizes (label fuzz-smoke).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "io/pack_artifacts.h"
#include "microbrowse/stats_db.h"
#include "pack/format.h"
#include "pack/pack_reader.h"
#include "pack/pack_writer.h"

namespace microbrowse {
namespace {

std::string FuzzPath(const std::string& name) {
  return ::testing::TempDir() + "/pack_fuzz_" + std::to_string(::getpid()) + "_" + name;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  ASSERT_TRUE(out.good()) << path;
}

/// A small but real artifact pack: a stats database with a few dozen keys
/// across all n-gram classes, written through the production save path.
std::string WriteStatsPack(const std::string& name) {
  const std::string path = FuzzPath(name);
  FeatureStatsDb db;
  for (int i = 0; i < 12; ++i) {
    const std::string suffix = std::to_string(i);
    db.SetStat("t:uni" + suffix, i, 2 * i + 1);
    db.SetStat("t:bi gram" + suffix, i / 2, i + 3);
    db.SetStat("t:tri gram here" + suffix, 1, i + 1);
    db.SetStat("p:0," + suffix, i % 3, i + 2);
  }
  EXPECT_TRUE(SaveStatsPack(db, path).ok());
  return path;
}

TEST(PackFuzzTest, TruncationAtEveryBoundaryIsRejected) {
  const std::string full_path = WriteStatsPack("trunc_src.mbp");
  const std::string bytes = ReadAll(full_path);
  ASSERT_GE(bytes.size(), pack::kMinFileSize);
  const std::string path = FuzzPath("trunc.mbp");
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteAll(path, bytes.substr(0, len));
    EXPECT_FALSE(pack::PackReader::Open(path).ok()) << "prefix of " << len << " bytes opened";
  }
  WriteAll(path, bytes);
  EXPECT_TRUE(pack::PackReader::Open(path).ok());
}

TEST(PackFuzzTest, ByteSoupNeverCrashesTheOpenPath) {
  Rng rng(20260807);
  const std::string path = FuzzPath("soup.mbp");
  for (int iteration = 0; iteration < 400; ++iteration) {
    const size_t len = rng.NextIndex(512);
    std::string soup;
    soup.reserve(len + sizeof(pack::kHeaderMagic));
    // Half the cases start with a valid magic so the parser gets past the
    // first check and exercises the header/table/footer validation.
    if (iteration % 2 == 0) {
      soup.assign(pack::kHeaderMagic, sizeof(pack::kHeaderMagic));
    }
    for (size_t i = 0; i < len; ++i) {
      soup.push_back(static_cast<char>(rng.NextIndex(256)));
    }
    WriteAll(path, soup);
    auto reader = pack::PackReader::Open(path);
    // Random bytes validating against three layered checksums: any success
    // here is a bug, not luck.
    EXPECT_FALSE(reader.ok()) << "iteration " << iteration;
    auto stats = LoadStatsPack(path);
    EXPECT_FALSE(stats.ok()) << "iteration " << iteration;
  }
}

TEST(PackFuzzTest, RandomBitFlipsAreRejectedByEveryLayer) {
  Rng rng(77);
  const std::string good = WriteStatsPack("flip_src.mbp");
  const std::string bytes = ReadAll(good);
  const std::string path = FuzzPath("flip.mbp");
  for (int iteration = 0; iteration < 300; ++iteration) {
    std::string damaged = bytes;
    const size_t victim = rng.NextIndex(damaged.size());
    const int bit = static_cast<int>(rng.NextIndex(8));
    damaged[victim] = static_cast<char>(damaged[victim] ^ (1 << bit));
    WriteAll(path, damaged);
    EXPECT_FALSE(pack::PackReader::Open(path).ok())
        << "byte " << victim << " bit " << bit;
    EXPECT_FALSE(LoadStatsPack(path).ok()) << "byte " << victim << " bit " << bit;
    auto is_pack = IsPackFile(path);
    // Sniffing stays byte-level: damage elsewhere must not break it.
    if (victim >= sizeof(pack::kHeaderMagic)) {
      ASSERT_TRUE(is_pack.ok());
      EXPECT_TRUE(*is_pack);
    }
  }
}

TEST(PackFuzzTest, SectionPayloadSoupNeverCrashesArtifactLoaders) {
  // Structurally valid packs (checksums intact) whose *section payloads* are
  // random bytes: the artifact schema validation in pack_artifacts.cc has to
  // reject them without crashing — this is the layer below the file
  // checksums, where lengths and offsets inside payloads are attacker data.
  Rng rng(4242);
  const std::string path = FuzzPath("schema_soup.mbp");
  for (int iteration = 0; iteration < 200; ++iteration) {
    pack::PackWriter writer;
    const int n_sections = 1 + static_cast<int>(rng.NextIndex(6));
    for (int s = 0; s < n_sections; ++s) {
      // Bias toward the stats schema's section ids so its loader engages.
      const uint32_t type = static_cast<uint32_t>(
          rng.NextIndex(2) == 0 ? 10 + rng.NextIndex(30) : rng.NextIndex(100));
      const size_t len = rng.NextIndex(128);
      std::string payload;
      payload.reserve(len);
      for (size_t i = 0; i < len; ++i) {
        payload.push_back(static_cast<char>(rng.NextIndex(256)));
      }
      writer.AddSection(type, std::move(payload));
    }
    const Status written = writer.Finish(path);
    if (!written.ok()) continue;  // Duplicate section types: writer output rejected later.
    auto stats = LoadStatsPack(path);
    auto classifier = LoadClassifierPack(path);
    // Either loader may fail for many reasons; neither may crash or succeed
    // with fabricated sections that never came from the save path.
    EXPECT_FALSE(stats.ok()) << "iteration " << iteration;
    EXPECT_FALSE(classifier.ok()) << "iteration " << iteration;
  }
}

}  // namespace
}  // namespace microbrowse
