// Copyright 2026 The Microbrowse Authors

#include "text/snippet.h"

#include <gtest/gtest.h>

#include "text/ngram.h"
#include "text/vocabulary.h"

namespace microbrowse {
namespace {

Snippet PaperSnippetR() {
  // The paper's Section IV-A example, Snippet 1.
  return Snippet::FromLines({"XYZ Airlines", "Find cheap flights to New York.",
                             "No reservation costs. Great rates"});
}

TEST(SnippetTest, FromLinesTokenizes) {
  const Snippet snippet = PaperSnippetR();
  ASSERT_EQ(snippet.num_lines(), 3);
  EXPECT_EQ(snippet.line(0), (std::vector<std::string>{"xyz", "airlines"}));
  EXPECT_EQ(snippet.line(1),
            (std::vector<std::string>{"find", "cheap", "flights", "to", "new", "york"}));
  EXPECT_EQ(snippet.num_tokens(), 2 + 6 + 5);
}

TEST(SnippetTest, FromTokensKeepsTokensVerbatim) {
  const Snippet snippet = Snippet::FromTokens({{"A", "B"}, {}});
  ASSERT_EQ(snippet.num_lines(), 2);
  EXPECT_EQ(snippet.line(0), (std::vector<std::string>{"A", "B"}));
  EXPECT_TRUE(snippet.line(1).empty());
}

TEST(SnippetTest, SpanText) {
  const Snippet snippet = PaperSnippetR();
  EXPECT_EQ(snippet.SpanText(1, 0, 2), "find cheap");
  EXPECT_EQ(snippet.SpanText(1, 2, 1), "flights");
  EXPECT_EQ(snippet.SpanText(0, 0, 2), "xyz airlines");
}

TEST(SnippetTest, ToStringJoinsLines) {
  const Snippet snippet = Snippet::FromTokens({{"a", "b"}, {"c"}});
  EXPECT_EQ(snippet.ToString(), "a b / c");
}

TEST(SnippetTest, Equality) {
  EXPECT_EQ(PaperSnippetR(), PaperSnippetR());
  EXPECT_FALSE(PaperSnippetR() == Snippet::FromTokens({{"x"}}));
}

TEST(SnippetTest, EmptySnippet) {
  Snippet snippet;
  EXPECT_EQ(snippet.num_lines(), 0);
  EXPECT_EQ(snippet.num_tokens(), 0);
  EXPECT_EQ(snippet.ToString(), "");
}

// --- ngram.h

TEST(NGramTest, ExtractsAllOrders) {
  const Snippet snippet = Snippet::FromTokens({{"a", "b", "c"}});
  const auto spans = ExtractNGrams(snippet, 3);
  // 3 unigrams + 2 bigrams + 1 trigram.
  EXPECT_EQ(spans.size(), 6u);
  EXPECT_EQ(spans.front().text, "a");
  bool found_trigram = false;
  for (const auto& span : spans) {
    if (span.len == 3) {
      found_trigram = true;
      EXPECT_EQ(span.text, "a b c");
      EXPECT_EQ(span.pos, 0);
    }
  }
  EXPECT_TRUE(found_trigram);
}

TEST(NGramTest, RespectsMaxOrder) {
  const Snippet snippet = Snippet::FromTokens({{"a", "b", "c", "d"}});
  for (const auto& span : ExtractNGrams(snippet, 2)) {
    EXPECT_LE(span.len, 2);
  }
  EXPECT_EQ(ExtractNGrams(snippet, 1).size(), 4u);
}

TEST(NGramTest, NGramsNeverSpanLines) {
  const Snippet snippet = Snippet::FromTokens({{"a", "b"}, {"c", "d"}});
  for (const auto& span : ExtractNGrams(snippet, 3)) {
    EXPECT_NE(span.text, "b c");
    EXPECT_NE(span.text, "a b c");
  }
}

TEST(NGramTest, SpanPositionsAreConsistent) {
  const Snippet snippet = Snippet::FromTokens({{"x"}, {"a", "b", "c"}});
  for (const auto& span : ExtractNGrams(snippet, 3)) {
    EXPECT_EQ(snippet.SpanText(span.line, span.pos, span.len), span.text);
  }
}

TEST(NGramTest, WindowExtraction) {
  const Snippet snippet = Snippet::FromTokens({{"a", "b", "c", "d", "e"}});
  const auto spans = ExtractNGramsInWindow(snippet, 0, 1, 3, 2);
  // Window [b, c, d]: unigrams b, c, d; bigrams "b c", "c d".
  EXPECT_EQ(spans.size(), 5u);
  for (const auto& span : spans) {
    EXPECT_GE(span.pos, 1);
    EXPECT_LE(span.pos + span.len, 4);
  }
}

TEST(NGramTest, WindowClampsToLine) {
  const Snippet snippet = Snippet::FromTokens({{"a", "b"}});
  const auto spans = ExtractNGramsInWindow(snippet, 0, 1, 100, 3);
  EXPECT_EQ(spans.size(), 1u);  // Just "b".
  EXPECT_TRUE(ExtractNGramsInWindow(snippet, 0, 5, 3, 3).empty());
}

TEST(NGramTest, EmptySnippetYieldsNothing) {
  EXPECT_TRUE(ExtractNGrams(Snippet(), 3).empty());
  EXPECT_TRUE(ExtractNGrams(Snippet::FromTokens({{}}), 3).empty());
}

// --- vocabulary.h

TEST(VocabularyTest, InternAssignsDenseIds) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.Intern("a"), 0u);
  EXPECT_EQ(vocab.Intern("b"), 1u);
  EXPECT_EQ(vocab.Intern("a"), 0u);
  EXPECT_EQ(vocab.size(), 2u);
}

TEST(VocabularyTest, FindAndContains) {
  Vocabulary vocab;
  vocab.Intern("term");
  EXPECT_EQ(vocab.Find("term"), 0u);
  EXPECT_EQ(vocab.Find("missing"), kInvalidTermId);
  EXPECT_TRUE(vocab.Contains("term"));
  EXPECT_FALSE(vocab.Contains("missing"));
}

TEST(VocabularyTest, TermOfRoundTrips) {
  Vocabulary vocab;
  const TermId id = vocab.Intern("round trip");
  EXPECT_EQ(vocab.TermOf(id), "round trip");
}

TEST(VocabularyTest, ManyTermsKeepStableIds) {
  Vocabulary vocab;
  std::vector<TermId> ids;
  for (int i = 0; i < 1000; ++i) ids.push_back(vocab.Intern("term" + std::to_string(i)));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(vocab.Find("term" + std::to_string(i)), ids[i]);
    EXPECT_EQ(vocab.TermOf(ids[i]), "term" + std::to_string(i));
  }
}

}  // namespace
}  // namespace microbrowse
