// Copyright 2026 The Microbrowse Authors

#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace microbrowse {
namespace {

TEST(TokenizerTest, BasicWords) {
  Tokenizer tokenizer;
  EXPECT_EQ(tokenizer.Tokenize("Find cheap flights"),
            (std::vector<std::string>{"find", "cheap", "flights"}));
}

TEST(TokenizerTest, PunctuationIsDropped) {
  Tokenizer tokenizer;
  EXPECT_EQ(tokenizer.Tokenize("No reservation costs. Great rates!"),
            (std::vector<std::string>{"no", "reservation", "costs", "great", "rates"}));
  EXPECT_EQ(tokenizer.Tokenize("Flying to New York? Get discounts."),
            (std::vector<std::string>{"flying", "to", "new", "york", "get", "discounts"}));
}

TEST(TokenizerTest, PercentStaysAttached) {
  Tokenizer tokenizer;
  EXPECT_EQ(tokenizer.Tokenize("20% off"), (std::vector<std::string>{"20%", "off"}));
}

TEST(TokenizerTest, DollarPrefixStaysAttached) {
  Tokenizer tokenizer;
  EXPECT_EQ(tokenizer.Tokenize("save $50 today"),
            (std::vector<std::string>{"save", "$50", "today"}));
}

TEST(TokenizerTest, LoneSymbolsAreDropped) {
  Tokenizer tokenizer;
  EXPECT_EQ(tokenizer.Tokenize("$ % - a"), (std::vector<std::string>{"a"}));
}

TEST(TokenizerTest, ApostrophesStayInsideWords) {
  Tokenizer tokenizer;
  EXPECT_EQ(tokenizer.Tokenize("today's deals"),
            (std::vector<std::string>{"today's", "deals"}));
}

TEST(TokenizerTest, EmptyAndWhitespaceOnly) {
  Tokenizer tokenizer;
  EXPECT_TRUE(tokenizer.Tokenize("").empty());
  EXPECT_TRUE(tokenizer.Tokenize("   \t ").empty());
  EXPECT_TRUE(tokenizer.Tokenize("...!?").empty());
}

TEST(TokenizerTest, LowercasingCanBeDisabled) {
  TokenizerOptions options;
  options.lowercase = false;
  Tokenizer tokenizer(options);
  EXPECT_EQ(tokenizer.Tokenize("New York"), (std::vector<std::string>{"New", "York"}));
}

TEST(TokenizerTest, OfferSymbolsCanBeDisabled) {
  TokenizerOptions options;
  options.keep_offer_symbols = false;
  Tokenizer tokenizer(options);
  EXPECT_EQ(tokenizer.Tokenize("20% off $50"),
            (std::vector<std::string>{"20", "off", "50"}));
}

TEST(TokenizerTest, NumbersAreTokens) {
  Tokenizer tokenizer;
  EXPECT_EQ(tokenizer.Tokenize("24 7 support"),
            (std::vector<std::string>{"24", "7", "support"}));
}

TEST(TokenizerTest, MixedAlphanumericTokens) {
  Tokenizer tokenizer;
  EXPECT_EQ(tokenizer.Tokenize("save10 4k"), (std::vector<std::string>{"save10", "4k"}));
}

}  // namespace
}  // namespace microbrowse
