// Copyright 2026 The Microbrowse Authors

#include "text/diff.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"

namespace microbrowse {
namespace {

std::vector<std::string> Tokens(std::initializer_list<const char*> items) {
  return std::vector<std::string>(items.begin(), items.end());
}

TEST(DiffTest, IdenticalSequencesHaveNoHunks) {
  const auto a = Tokens({"a", "b", "c"});
  EXPECT_TRUE(TokenDiff(a, a).empty());
}

TEST(DiffTest, EmptySequences) {
  EXPECT_TRUE(TokenDiff({}, {}).empty());
  const auto hunks = TokenDiff(Tokens({"a", "b"}), {});
  ASSERT_EQ(hunks.size(), 1u);
  EXPECT_EQ(hunks[0], (DiffHunk{0, 2, 0, 0}));
  const auto hunks2 = TokenDiff({}, Tokens({"x"}));
  ASSERT_EQ(hunks2.size(), 1u);
  EXPECT_EQ(hunks2[0], (DiffHunk{0, 0, 0, 1}));
}

TEST(DiffTest, SingleSubstitution) {
  const auto hunks = TokenDiff(Tokens({"find", "cheap", "flights"}),
                               Tokens({"find", "best", "flights"}));
  ASSERT_EQ(hunks.size(), 1u);
  EXPECT_EQ(hunks[0], (DiffHunk{1, 1, 1, 1}));
}

TEST(DiffTest, ReplacementWithDifferentLengths) {
  const auto hunks = TokenDiff(Tokens({"find", "cheap", "flights"}),
                               Tokens({"get", "discounts", "on", "flights"}));
  ASSERT_EQ(hunks.size(), 1u);
  EXPECT_EQ(hunks[0], (DiffHunk{0, 2, 0, 3}));
}

TEST(DiffTest, PureInsertionAndDeletion) {
  const auto ins = TokenDiff(Tokens({"a", "c"}), Tokens({"a", "b", "c"}));
  ASSERT_EQ(ins.size(), 1u);
  EXPECT_EQ(ins[0], (DiffHunk{1, 0, 1, 1}));

  const auto del = TokenDiff(Tokens({"a", "b", "c"}), Tokens({"a", "c"}));
  ASSERT_EQ(del.size(), 1u);
  EXPECT_EQ(del[0], (DiffHunk{1, 1, 1, 0}));
}

TEST(DiffTest, MultipleHunks) {
  const auto hunks = TokenDiff(Tokens({"a", "x", "b", "y", "c"}),
                               Tokens({"a", "p", "b", "q", "c"}));
  ASSERT_EQ(hunks.size(), 2u);
  EXPECT_EQ(hunks[0], (DiffHunk{1, 1, 1, 1}));
  EXPECT_EQ(hunks[1], (DiffHunk{3, 1, 3, 1}));
}

TEST(DiffTest, TrailingChange) {
  const auto hunks = TokenDiff(Tokens({"a", "b"}), Tokens({"a", "z", "w"}));
  ASSERT_EQ(hunks.size(), 1u);
  EXPECT_EQ(hunks[0], (DiffHunk{1, 1, 1, 2}));
}

TEST(LcsLengthTest, KnownValues) {
  EXPECT_EQ(LcsLength(Tokens({"a", "b", "c"}), Tokens({"a", "b", "c"})), 3);
  EXPECT_EQ(LcsLength(Tokens({"a", "b", "c"}), Tokens({"x", "y"})), 0);
  EXPECT_EQ(LcsLength(Tokens({"a", "b", "c", "d"}), Tokens({"b", "d"})), 2);
  EXPECT_EQ(LcsLength({}, Tokens({"a"})), 0);
}

TEST(DiffTest, MatchesReportTheLcs) {
  std::vector<TokenMatch> matches;
  const auto a = Tokens({"no", "reservation", "costs", "great", "rates"});
  const auto b = Tokens({"no", "hidden", "costs", "great", "deals"});
  TokenDiff(a, b, &matches);
  ASSERT_EQ(matches.size(), 3u);  // no, costs, great.
  for (const auto& match : matches) {
    EXPECT_EQ(a[match.a_index], b[match.b_index]);
  }
  EXPECT_EQ(static_cast<int>(matches.size()), LcsLength(a, b));
}

/// Applies the hunks to `a` and checks the result equals `b` — the
/// defining property of a correct diff.
std::vector<std::string> ApplyHunks(const std::vector<std::string>& a,
                                    const std::vector<std::string>& b,
                                    const std::vector<DiffHunk>& hunks) {
  std::vector<std::string> out;
  int a_pos = 0;
  for (const DiffHunk& hunk : hunks) {
    while (a_pos < hunk.a_pos) out.push_back(a[a_pos++]);
    a_pos += hunk.a_len;  // Drop deleted tokens.
    for (int j = 0; j < hunk.b_len; ++j) out.push_back(b[hunk.b_pos + j]);
  }
  while (a_pos < static_cast<int>(a.size())) out.push_back(a[a_pos++]);
  return out;
}

class DiffPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DiffPropertyTest, ApplyingHunksReconstructsTarget) {
  Rng rng(GetParam());
  const std::vector<std::string> alphabet = {"a", "b", "c", "d"};
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::string> a, b;
    const int na = static_cast<int>(rng.NextIndex(10));
    const int nb = static_cast<int>(rng.NextIndex(10));
    for (int i = 0; i < na; ++i) a.push_back(alphabet[rng.NextIndex(alphabet.size())]);
    for (int i = 0; i < nb; ++i) b.push_back(alphabet[rng.NextIndex(alphabet.size())]);
    const auto hunks = TokenDiff(a, b);
    EXPECT_EQ(ApplyHunks(a, b, hunks), b) << "trial " << trial;
    // Hunks are ordered and non-overlapping.
    for (size_t h = 1; h < hunks.size(); ++h) {
      EXPECT_GE(hunks[h].a_pos, hunks[h - 1].a_pos + hunks[h - 1].a_len);
      EXPECT_GE(hunks[h].b_pos, hunks[h - 1].b_pos + hunks[h - 1].b_len);
    }
    // Matched token count equals the LCS length (minimality).
    std::vector<TokenMatch> matches;
    TokenDiff(a, b, &matches);
    EXPECT_EQ(static_cast<int>(matches.size()), LcsLength(a, b));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffPropertyTest, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace microbrowse
