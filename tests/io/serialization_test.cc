// Copyright 2026 The Microbrowse Authors

#include "io/serialization.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "clickmodels/simulator.h"
#include "clickmodels/pbm.h"
#include "corpus/generator.h"
#include "corpus/pair_extraction.h"

namespace microbrowse {
namespace {

std::string TempPath(const std::string& name) { return ::testing::TempDir() + "/" + name; }

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

// --- AdCorpus round trip

TEST(AdCorpusIoTest, RoundTripPreservesEverything) {
  AdCorpusOptions options;
  options.num_adgroups = 40;
  options.seed = 3;
  auto generated = GenerateAdCorpus(options);
  ASSERT_TRUE(generated.ok());
  const std::string path = TempPath("corpus_roundtrip.tsv");
  ASSERT_TRUE(SaveAdCorpus(generated->corpus, path).ok());

  auto loaded = LoadAdCorpus(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->adgroups.size(), generated->corpus.adgroups.size());
  EXPECT_EQ(loaded->placement, generated->corpus.placement);
  for (size_t g = 0; g < loaded->adgroups.size(); ++g) {
    const AdGroup& a = generated->corpus.adgroups[g];
    const AdGroup& b = loaded->adgroups[g];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.keyword_id, b.keyword_id);
    EXPECT_EQ(a.keyword, b.keyword);
    ASSERT_EQ(a.creatives.size(), b.creatives.size());
    for (size_t c = 0; c < a.creatives.size(); ++c) {
      EXPECT_EQ(a.creatives[c].snippet, b.creatives[c].snippet);
      EXPECT_EQ(a.creatives[c].impressions, b.creatives[c].impressions);
      EXPECT_EQ(a.creatives[c].clicks, b.creatives[c].clicks);
      EXPECT_NEAR(a.creatives[c].true_ctr, b.creatives[c].true_ctr, 1e-7);
    }
  }
  std::remove(path.c_str());
}

TEST(AdCorpusIoTest, RhsPlacementSurvivesRoundTrip) {
  AdCorpusOptions options;
  options.num_adgroups = 5;
  options.placement = Placement::kRhs;
  auto generated = GenerateAdCorpus(options);
  ASSERT_TRUE(generated.ok());
  const std::string path = TempPath("corpus_rhs.tsv");
  ASSERT_TRUE(SaveAdCorpus(generated->corpus, path).ok());
  auto loaded = LoadAdCorpus(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->placement, Placement::kRhs);
  std::remove(path.c_str());
}

TEST(AdCorpusIoTest, PairExtractionAgreesAfterRoundTrip) {
  AdCorpusOptions options;
  options.num_adgroups = 60;
  auto generated = GenerateAdCorpus(options);
  ASSERT_TRUE(generated.ok());
  const std::string path = TempPath("corpus_pairs.tsv");
  ASSERT_TRUE(SaveAdCorpus(generated->corpus, path).ok());
  auto loaded = LoadAdCorpus(path);
  ASSERT_TRUE(loaded.ok());
  const PairCorpus before = ExtractSignificantPairs(generated->corpus, {});
  const PairCorpus after = ExtractSignificantPairs(*loaded, {});
  ASSERT_EQ(before.pairs.size(), after.pairs.size());
  for (size_t i = 0; i < before.pairs.size(); ++i) {
    EXPECT_EQ(before.pairs[i].r.snippet, after.pairs[i].r.snippet);
    EXPECT_NEAR(before.pairs[i].r.serve_weight, after.pairs[i].r.serve_weight, 1e-9);
  }
  std::remove(path.c_str());
}

TEST(AdCorpusIoTest, MissingFileFails) {
  EXPECT_EQ(LoadAdCorpus("/nonexistent/nope.tsv").status().code(), StatusCode::kIOError);
}

TEST(AdCorpusIoTest, MissingHeaderFails) {
  const std::string path = TempPath("corpus_noheader.tsv");
  WriteFile(path, "1\t2\tkw\t3\t100\t5\t0.05\ta | b | c\n");
  EXPECT_EQ(LoadAdCorpus(path).status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(AdCorpusIoTest, MalformedRowReportsLineNumber) {
  const std::string path = TempPath("corpus_badrow.tsv");
  WriteFile(path, "#microbrowse-adcorpus-v1\ttop\n1\t2\tkw\tnot_an_int\t100\t5\t0.05\ta\n");
  const auto result = LoadAdCorpus(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find(":2:"), std::string::npos);
  std::remove(path.c_str());
}

TEST(AdCorpusIoTest, ClicksAboveImpressionsRejected) {
  const std::string path = TempPath("corpus_badcounts.tsv");
  WriteFile(path, "#microbrowse-adcorpus-v1\ttop\n1\t2\tkw\t3\t10\t50\t0.05\ta | b | c\n");
  EXPECT_FALSE(LoadAdCorpus(path).ok());
  std::remove(path.c_str());
}

// --- ClickLog round trip

TEST(ClickLogIoTest, RoundTrip) {
  SerpSimulatorOptions options;
  options.num_queries = 5;
  options.docs_per_query = 6;
  options.positions = 4;
  options.num_sessions = 200;
  Rng rng(8);
  const SerpGroundTruth truth = MakeSerpGroundTruth(options, &rng);
  const PositionBasedModel model({0.9, 0.6, 0.4, 0.2}, truth.attraction);
  auto log = SimulateSerpLog(options, truth, model, &rng);
  ASSERT_TRUE(log.ok());

  const std::string path = TempPath("clicklog.tsv");
  ASSERT_TRUE(SaveClickLog(*log, path).ok());
  auto loaded = LoadClickLog(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->sessions.size(), log->sessions.size());
  EXPECT_EQ(loaded->max_positions, log->max_positions);
  EXPECT_EQ(loaded->num_queries, log->num_queries);
  for (size_t s = 0; s < loaded->sessions.size(); ++s) {
    EXPECT_EQ(loaded->sessions[s].query_id, log->sessions[s].query_id);
    ASSERT_EQ(loaded->sessions[s].results.size(), log->sessions[s].results.size());
    for (size_t i = 0; i < loaded->sessions[s].results.size(); ++i) {
      EXPECT_EQ(loaded->sessions[s].results[i].doc_id, log->sessions[s].results[i].doc_id);
      EXPECT_EQ(loaded->sessions[s].results[i].clicked, log->sessions[s].results[i].clicked);
    }
  }
  std::remove(path.c_str());
}

TEST(ClickLogIoTest, MalformedCellFails) {
  const std::string path = TempPath("clicklog_bad.tsv");
  WriteFile(path, "#microbrowse-clicklog-v1\n3\t5:2\n");
  EXPECT_FALSE(LoadClickLog(path).ok());
  std::remove(path.c_str());
}

// --- FeatureStatsDb round trip

TEST(StatsIoTest, RoundTripPreservesCountsAndSettings) {
  FeatureStatsDb db;
  db.set_smoothing(2.0);
  db.set_min_count(4);
  for (int i = 0; i < 7; ++i) db.AddObservation("t:cheap", +1);
  for (int i = 0; i < 3; ++i) db.AddObservation("t:cheap", -1);
  db.AddObservation("rw:a=>b", -1);

  const std::string path = TempPath("stats.tsv");
  ASSERT_TRUE(SaveFeatureStats(db, path).ok());
  auto loaded = LoadFeatureStats(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), db.size());
  EXPECT_DOUBLE_EQ(loaded->smoothing(), 2.0);
  EXPECT_EQ(loaded->min_count(), 4);
  const FeatureStat* stat = loaded->Find("t:cheap");
  ASSERT_NE(stat, nullptr);
  EXPECT_EQ(stat->positive, 7);
  EXPECT_EQ(stat->total, 10);
  EXPECT_DOUBLE_EQ(loaded->LogOdds("t:cheap"), db.LogOdds("t:cheap"));
  std::remove(path.c_str());
}

TEST(StatsIoTest, InvalidCountsRejected) {
  const std::string path = TempPath("stats_bad.tsv");
  WriteFile(path, "#microbrowse-stats-v1\t1.0\t0\nt:x\t5\t3\n");
  EXPECT_FALSE(LoadFeatureStats(path).ok());
  std::remove(path.c_str());
}

// --- Classifier round trip

TEST(ClassifierIoTest, RoundTrip) {
  FeatureRegistry t_registry;
  t_registry.Intern("t:cheap", 0.4);
  t_registry.Intern("rw:a=>b", -0.2);
  FeatureRegistry p_registry;
  p_registry.Intern("p:1:0", 1.1);
  SnippetClassifierModel model;
  model.t_weights = {0.75, -0.5};
  model.p_weights = {1.3};
  model.bias = 0.01;

  const std::string path = TempPath("classifier.txt");
  ASSERT_TRUE(SaveClassifier(model, t_registry, p_registry, path).ok());
  auto loaded = LoadClassifier(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->model.t_weights, model.t_weights);
  EXPECT_EQ(loaded->model.p_weights, model.p_weights);
  EXPECT_DOUBLE_EQ(loaded->model.bias, model.bias);
  EXPECT_EQ(loaded->t_registry.size(), 2u);
  EXPECT_EQ(loaded->t_registry.NameOf(0), "t:cheap");
  EXPECT_DOUBLE_EQ(loaded->t_registry.InitialWeightOf(0), 0.4);
  EXPECT_EQ(loaded->p_registry.NameOf(0), "p:1:0");
  std::remove(path.c_str());
}

TEST(ClassifierIoTest, SizeMismatchRejectedOnSave) {
  FeatureRegistry t_registry;
  t_registry.Intern("t:x", 0.0);
  FeatureRegistry p_registry;
  SnippetClassifierModel model;  // Empty weights: mismatch with t_registry.
  EXPECT_EQ(SaveClassifier(model, t_registry, p_registry, TempPath("never.txt")).code(),
            StatusCode::kInvalidArgument);
}

TEST(ClassifierIoTest, TruncatedFileFails) {
  const std::string path = TempPath("classifier_trunc.txt");
  WriteFile(path, "#microbrowse-classifier-v1\t0.0\nT\t2\nt:x\t0.1\t0.2\n");
  EXPECT_FALSE(LoadClassifier(path).ok());
  std::remove(path.c_str());
}

// --- Artifact format v2: checksums and row-level recovery

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

AdCorpus SmallCorpus() {
  AdCorpusOptions options;
  options.num_adgroups = 10;
  options.seed = 21;
  auto generated = GenerateAdCorpus(options);
  EXPECT_TRUE(generated.ok());
  return generated->corpus;
}

TEST(ArtifactV2Test, SavedArtifactsCarryVerifiedChecksumFooter) {
  const std::string path = TempPath("v2_footer.tsv");
  ASSERT_TRUE(SaveAdCorpus(SmallCorpus(), path).ok());
  EXPECT_NE(ReadWholeFile(path).find("#checksum "), std::string::npos);

  LoadReport report;
  ASSERT_TRUE(LoadAdCorpus(path, LoadOptions{}, &report).ok());
  EXPECT_TRUE(report.checksum_present);
  EXPECT_TRUE(report.checksum_ok);
  EXPECT_GT(report.rows_kept, 0);
  EXPECT_EQ(report.rows_skipped, 0);
  std::remove(path.c_str());
}

TEST(ArtifactV2Test, CorruptedPayloadFailsStrictButSalvagesInSkipAndLog) {
  const std::string path = TempPath("v2_corrupt.tsv");
  ASSERT_TRUE(SaveAdCorpus(SmallCorpus(), path).ok());
  // Flip a letter inside the first row's keyword string: every row still
  // parses, but the payload no longer matches the footer hash.
  std::string data = ReadWholeFile(path);
  size_t pos = data.find('\n') + 1;
  while (pos < data.size() && !std::isalpha(static_cast<unsigned char>(data[pos]))) ++pos;
  ASSERT_LT(pos, data.size());
  data[pos] = data[pos] == 'q' ? 'x' : 'q';
  WriteFile(path, data);

  const auto strict = LoadAdCorpus(path);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kIOError);
  EXPECT_NE(strict.status().message().find("checksum mismatch"), std::string::npos);

  LoadOptions salvage;
  salvage.recovery = LoadOptions::Recovery::kSkipAndLog;
  LoadReport report;
  ASSERT_TRUE(LoadAdCorpus(path, salvage, &report).ok());
  EXPECT_TRUE(report.checksum_present);
  EXPECT_FALSE(report.checksum_ok);
  EXPECT_GT(report.rows_kept, 0);
  std::remove(path.c_str());
}

TEST(ArtifactV2Test, TruncatedArtifactFailsStrictLoad) {
  const std::string path = TempPath("v2_trunc.tsv");
  ASSERT_TRUE(SaveAdCorpus(SmallCorpus(), path).ok());
  // Drop one data row but keep the footer: the hash no longer matches.
  std::string data = ReadWholeFile(path);
  const size_t footer = data.find("#checksum ");
  ASSERT_NE(footer, std::string::npos);
  const size_t last_row = data.rfind('\n', footer - 2);
  ASSERT_NE(last_row, std::string::npos);
  WriteFile(path, data.substr(0, last_row + 1) + data.substr(footer));

  const auto result = LoadAdCorpus(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST(ArtifactV2Test, LegacyV1FileWithoutFooterStillLoads) {
  const std::string path = TempPath("v2_legacy.tsv");
  WriteFile(path,
            "#microbrowse-adcorpus-v1\ttop\n"
            "1\t2\tkw one\t3\t100\t5\t0.05\ta | b | c\n");
  LoadReport report;
  const auto result = LoadAdCorpus(path, LoadOptions{}, &report);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(report.checksum_present);
  EXPECT_TRUE(report.checksum_ok);
  EXPECT_EQ(report.rows_kept, 1);
  std::remove(path.c_str());
}

TEST(ArtifactV2Test, SkipAndLogSkipsMalformedRowsWithAccurateReport) {
  const std::string path = TempPath("v2_badrows.tsv");
  WriteFile(path,
            "#microbrowse-adcorpus-v1\ttop\n"
            "1\t2\tkw one\t3\t100\t5\t0.05\ta | b | c\n"
            "1\t3\tkw two\tnot_an_int\t100\t5\t0.05\ta\n"
            "2\t4\tkw three\t3\t200\t9\t0.04\td | e\n");

  // Strict: the malformed row (line 3) fails the whole load.
  const auto strict = LoadAdCorpus(path);
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.status().message().find(":3:"), std::string::npos);

  LoadOptions salvage;
  salvage.recovery = LoadOptions::Recovery::kSkipAndLog;
  LoadReport report;
  const auto result = LoadAdCorpus(path, salvage, &report);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(report.rows_kept, 2);
  EXPECT_EQ(report.rows_skipped, 1);
  EXPECT_EQ(report.first_error_line, 3);
  EXPECT_FALSE(report.first_error.empty());
  size_t creatives = 0;
  for (const auto& adgroup : result->adgroups) creatives += adgroup.creatives.size();
  EXPECT_EQ(creatives, 2u);
  std::remove(path.c_str());
}

TEST(ArtifactV2Test, StatsAndClassifierFootersRoundTrip) {
  FeatureStatsDb db;
  db.SetStat("t:alpha", 3, 10);
  db.SetStat("p:0:1", 1, 4);
  const std::string stats_path = TempPath("v2_stats.tsv");
  ASSERT_TRUE(SaveFeatureStats(db, stats_path).ok());
  LoadReport stats_report;
  ASSERT_TRUE(LoadFeatureStats(stats_path, LoadOptions{}, &stats_report).ok());
  EXPECT_TRUE(stats_report.checksum_present);
  EXPECT_TRUE(stats_report.checksum_ok);
  EXPECT_EQ(stats_report.rows_kept, 2);
  std::remove(stats_path.c_str());

  FeatureRegistry t_registry;
  t_registry.Intern("t:x", 0.0);
  SnippetClassifierModel model;
  model.t_weights = {0.5};
  const std::string model_path = TempPath("v2_model.tsv");
  ASSERT_TRUE(SaveClassifier(model, t_registry, FeatureRegistry{}, model_path).ok());
  LoadReport model_report;
  ASSERT_TRUE(LoadClassifier(model_path, LoadOptions{}, &model_report).ok());
  EXPECT_TRUE(model_report.checksum_present);
  EXPECT_TRUE(model_report.checksum_ok);
  std::remove(model_path.c_str());
}

}  // namespace
}  // namespace microbrowse
