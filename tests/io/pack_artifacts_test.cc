// Copyright 2026 The Microbrowse Authors
//
// Parity tests for the mbpack artifact schemas (io/pack_artifacts.h): a
// stats database or classifier loaded from a pack must be observationally
// *bitwise* identical to the same artifact loaded from TSV — same feature
// ids, same counts, same log-odds, same pairwise margins — because the
// serving stack treats the two formats as interchangeable behind one
// interface. Also covers the format sniff, pack-inspect rendering and the
// reload fingerprint fast path.

#include "io/pack_artifacts.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "io/atomic_file.h"

#include "corpus/generator.h"
#include "corpus/pair_extraction.h"
#include "io/serialization.h"
#include "microbrowse/classifier.h"
#include "microbrowse/optimizer.h"
#include "microbrowse/stats_db.h"

namespace microbrowse {
namespace {

/// Trains one small M6 artifact set shared by every test in the suite
/// (everything below only reads it).
class PackArtifactsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::string(::testing::TempDir() + "/pack_artifacts_test_" +
                           std::to_string(::getpid()));
    ASSERT_TRUE(CreateDirectories(*dir_).ok());

    AdCorpusOptions corpus_options;
    corpus_options.num_adgroups = 60;
    corpus_options.seed = 7;
    auto generated = GenerateAdCorpus(corpus_options);
    ASSERT_TRUE(generated.ok());
    corpus_ = new AdCorpus(generated->corpus);
    const PairCorpus pairs = ExtractSignificantPairs(*corpus_, {});
    db_ = new FeatureStatsDb(BuildFeatureStats(pairs, {}));
    config_ = new ClassifierConfig(ClassifierConfig::M6());
    const CoupledDataset dataset = BuildClassifierDataset(pairs, *db_, *config_, 7);
    auto model = TrainSnippetClassifier(dataset, *config_);
    ASSERT_TRUE(model.ok());

    ASSERT_TRUE(SaveFeatureStats(*db_, *dir_ + "/stats.tsv").ok());
    ASSERT_TRUE(SaveClassifier(*model, dataset.t_registry, dataset.p_registry,
                               *dir_ + "/model.txt")
                    .ok());
    // Packs are converted *from the TSV artifacts* (the mbctl pack flow):
    // TSV text is the interchange truth, so the pack must carry the doubles
    // as the TSV loader parses them — that is what makes the two read paths
    // bitwise-identical downstream.
    auto tsv_db = LoadFeatureStats(*dir_ + "/stats.tsv");
    auto tsv_model = LoadClassifier(*dir_ + "/model.txt");
    ASSERT_TRUE(tsv_db.ok());
    ASSERT_TRUE(tsv_model.ok());
    ASSERT_TRUE(SaveStatsPack(*tsv_db, *dir_ + "/stats.mbp").ok());
    ASSERT_TRUE(SaveClassifierPack(tsv_model->model, tsv_model->t_registry,
                                   tsv_model->p_registry, *dir_ + "/model.mbp")
                    .ok());
  }

  static void TearDownTestSuite() {
    delete config_;
    delete db_;
    delete corpus_;
    delete dir_;
  }

  static const std::string* dir_;
  static const AdCorpus* corpus_;
  static const FeatureStatsDb* db_;
  static const ClassifierConfig* config_;
};

const std::string* PackArtifactsTest::dir_ = nullptr;
const AdCorpus* PackArtifactsTest::corpus_ = nullptr;
const FeatureStatsDb* PackArtifactsTest::db_ = nullptr;
const ClassifierConfig* PackArtifactsTest::config_ = nullptr;

TEST_F(PackArtifactsTest, StatsPackIsBitwiseIdenticalToHeapDb) {
  auto packed = LoadStatsPack(*dir_ + "/stats.mbp");
  ASSERT_TRUE(packed.ok()) << packed.status().ToString();
  EXPECT_EQ(packed->size(), db_->size());
  EXPECT_EQ(packed->base_size(), db_->size());
  EXPECT_EQ(packed->smoothing(), db_->smoothing());
  EXPECT_EQ(packed->min_count(), db_->min_count());

  // Every key, both directions; counts and derived statistics must match to
  // the last bit (the records are the same bytes, just mmap'd).
  size_t visited = 0;
  db_->ForEach([&](std::string_view key, const FeatureStat& stat) {
    ++visited;
    const FeatureStat* found = packed->Find(key);
    ASSERT_NE(found, nullptr) << key;
    EXPECT_EQ(found->positive, stat.positive) << key;
    EXPECT_EQ(found->total, stat.total) << key;
    EXPECT_EQ(packed->LogOdds(key), db_->LogOdds(key)) << key;
  });
  EXPECT_EQ(visited, db_->size());

  size_t pack_visited = 0;
  packed->ForEach([&](std::string_view key, const FeatureStat& stat) {
    ++pack_visited;
    const FeatureStat* original = db_->Find(key);
    ASSERT_NE(original, nullptr) << key;
    EXPECT_EQ(original->positive, stat.positive) << key;
  });
  EXPECT_EQ(pack_visited, db_->size());

  EXPECT_EQ(packed->Find("t:never such a key"), nullptr);
  EXPECT_EQ(packed->LogOdds("t:never such a key"), 0.0);
}

TEST_F(PackArtifactsTest, PackBackedDbRoundTripsThroughTsv) {
  // SaveFeatureStats must see the base layer: a pack-loaded database written
  // back to TSV has to reproduce the original TSV byte for byte.
  auto packed = LoadStatsPack(*dir_ + "/stats.mbp");
  ASSERT_TRUE(packed.ok());
  const std::string resaved = *dir_ + "/stats_resaved.tsv";
  ASSERT_TRUE(SaveFeatureStats(*packed, resaved).ok());
  std::ifstream a(*dir_ + "/stats.tsv", std::ios::binary);
  std::ifstream b(resaved, std::ios::binary);
  std::ostringstream buf_a, buf_b;
  buf_a << a.rdbuf();
  buf_b << b.rdbuf();
  EXPECT_EQ(buf_a.str(), buf_b.str());
}

TEST_F(PackArtifactsTest, ClassifierPackAssignsIdenticalFeatureIds) {
  auto tsv = LoadClassifier(*dir_ + "/model.txt");
  auto packed = LoadClassifierPack(*dir_ + "/model.mbp");
  ASSERT_TRUE(tsv.ok());
  ASSERT_TRUE(packed.ok()) << packed.status().ToString();

  EXPECT_EQ(packed->model.bias, tsv->model.bias);
  ASSERT_EQ(packed->model.t_weights, tsv->model.t_weights);  // Bitwise: double ==.
  ASSERT_EQ(packed->model.p_weights, tsv->model.p_weights);

  ASSERT_EQ(packed->t_registry.size(), tsv->t_registry.size());
  ASSERT_EQ(packed->p_registry.size(), tsv->p_registry.size());
  for (size_t id = 0; id < tsv->t_registry.size(); ++id) {
    const std::string_view name = tsv->t_registry.NameOf(static_cast<FeatureId>(id));
    EXPECT_EQ(packed->t_registry.NameOf(static_cast<FeatureId>(id)), name);
    EXPECT_EQ(packed->t_registry.Find(name), static_cast<FeatureId>(id)) << name;
  }
  for (size_t id = 0; id < tsv->p_registry.size(); ++id) {
    const std::string_view name = tsv->p_registry.NameOf(static_cast<FeatureId>(id));
    EXPECT_EQ(packed->p_registry.Find(name), static_cast<FeatureId>(id)) << name;
  }
  EXPECT_EQ(packed->t_registry.InitialWeights(), tsv->t_registry.InitialWeights());
}

TEST_F(PackArtifactsTest, ScoringIsBitwiseIdenticalAcrossFormats) {
  auto tsv_model = LoadClassifier(*dir_ + "/model.txt");
  auto pack_model = LoadClassifierPack(*dir_ + "/model.mbp");
  auto pack_stats = LoadStatsPack(*dir_ + "/stats.mbp");
  ASSERT_TRUE(tsv_model.ok());
  ASSERT_TRUE(pack_model.ok());
  ASSERT_TRUE(pack_stats.ok());

  int compared = 0;
  for (const auto& adgroup : corpus_->adgroups) {
    for (size_t i = 0; i + 1 < adgroup.creatives.size() && compared < 50; i += 2) {
      const Snippet& a = adgroup.creatives[i].snippet;
      const Snippet& b = adgroup.creatives[i + 1].snippet;
      const double via_tsv = PredictPairMargin(a, b, *db_, *config_, tsv_model->model,
                                               tsv_model->t_registry, tsv_model->p_registry);
      const double via_pack =
          PredictPairMargin(a, b, *pack_stats, *config_, pack_model->model,
                            pack_model->t_registry, pack_model->p_registry);
      // Bitwise, not approximate: the two paths must run the same floating-
      // point operations on the same values in the same order.
      EXPECT_EQ(via_tsv, via_pack);
      ++compared;
    }
  }
  EXPECT_GE(compared, 10);
}

TEST_F(PackArtifactsTest, SniffDistinguishesFormats) {
  auto pack = IsPackFile(*dir_ + "/stats.mbp");
  auto tsv = IsPackFile(*dir_ + "/stats.tsv");
  ASSERT_TRUE(pack.ok());
  ASSERT_TRUE(tsv.ok());
  EXPECT_TRUE(*pack);
  EXPECT_FALSE(*tsv);
  EXPECT_FALSE(IsPackFile(*dir_ + "/no_such_file").ok());
}

TEST_F(PackArtifactsTest, DescribePackRendersBothSchemas) {
  auto stats = DescribePack(*dir_ + "/stats.mbp");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("feature-statistics database"), std::string::npos) << *stats;
  EXPECT_NE(stats->find("file checksum"), std::string::npos);

  auto model = DescribePack(*dir_ + "/model.mbp");
  ASSERT_TRUE(model.ok());
  EXPECT_NE(model->find("snippet classifier"), std::string::npos) << *model;

  EXPECT_FALSE(DescribePack(*dir_ + "/stats.tsv").ok());
}

TEST_F(PackArtifactsTest, FingerprintTracksContentForBothFormats) {
  for (const std::string name : {"/stats.tsv", "/stats.mbp"}) {
    auto first = FileChecksum(*dir_ + name);
    auto again = FileChecksum(*dir_ + name);
    ASSERT_TRUE(first.ok()) << name;
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*first, *again) << name;
  }
  auto stats = FileChecksum(*dir_ + "/stats.mbp");
  auto model = FileChecksum(*dir_ + "/model.mbp");
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(model.ok());
  EXPECT_NE(*stats, *model);
  EXPECT_FALSE(FileChecksum(*dir_ + "/no_such_file").ok());
}

}  // namespace
}  // namespace microbrowse
