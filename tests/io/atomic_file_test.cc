// Copyright 2026 The Microbrowse Authors
//
// Crash-safety tests for the atomic artifact writer: failpoints simulate a
// crash at every stage of the write protocol and the old artifact must
// survive intact each time.

#include "io/atomic_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/failpoint.h"
#include "common/retry.h"

namespace microbrowse {
namespace {

std::string TempPath(const std::string& name) { return ::testing::TempDir() + "/" + name; }

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool FileExists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::DeactivateAll(); }
  void TearDown() override { failpoint::DeactivateAll(); }
};

TEST_F(AtomicFileTest, WriteThenReadRoundTrips) {
  const std::string path = TempPath("atomic_roundtrip.tsv");
  ASSERT_TRUE(WriteFileAtomic(path, "hello\nworld\n").ok());
  EXPECT_EQ(ReadWholeFile(path), "hello\nworld\n");
  std::remove(path.c_str());
}

TEST_F(AtomicFileTest, ArtifactFooterIsAppendedAndVerified) {
  const std::string path = TempPath("atomic_footer.tsv");
  ASSERT_TRUE(WriteArtifactAtomic(path, "#header\nrow1\nrow2\n", 2).ok());
  const std::string data = ReadWholeFile(path);
  EXPECT_NE(data.find("#checksum "), std::string::npos);

  auto content = ReadArtifact(path);
  ASSERT_TRUE(content.ok());
  EXPECT_TRUE(content->checksum_present);
  EXPECT_TRUE(content->checksum_ok);
  EXPECT_EQ(content->declared_rows, 2);
  ASSERT_EQ(content->lines.size(), 3u);  // Footer stripped.
  EXPECT_EQ(content->lines[0], "#header");
  EXPECT_EQ(content->lines[2], "row2");
  std::remove(path.c_str());
}

TEST_F(AtomicFileTest, PayloadMustEndWithNewline) {
  EXPECT_EQ(WriteArtifactAtomic(TempPath("never.tsv"), "no newline", 1).code(),
            StatusCode::kInvalidArgument);
}

// The headline crash test: a simulated crash between writing the temp file
// and renaming it must leave the previous artifact untouched.
TEST_F(AtomicFileTest, CrashBeforeRenameLeavesOldArtifactIntact) {
  const std::string path = TempPath("atomic_crash.tsv");
  ASSERT_TRUE(WriteArtifactAtomic(path, "old generation\n", 1).ok());
  const std::string before = ReadWholeFile(path);

  failpoint::Activate("io.write.rename", failpoint::Spec{});
  const Status status = WriteArtifactAtomic(path, "new generation\n", 1);
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  failpoint::DeactivateAll();

  EXPECT_EQ(ReadWholeFile(path), before);           // Old artifact survives...
  EXPECT_FALSE(FileExists(path + ".tmp"));          // ...and no temp litter remains.
  auto content = ReadArtifact(path);
  ASSERT_TRUE(content.ok());
  EXPECT_TRUE(content->checksum_ok);
  ASSERT_FALSE(content->lines.empty());
  EXPECT_EQ(content->lines[0], "old generation");
  std::remove(path.c_str());
}

TEST_F(AtomicFileTest, CrashAtEveryWriteStageLeavesOldArtifactIntact) {
  const std::string path = TempPath("atomic_stages.tsv");
  ASSERT_TRUE(WriteArtifactAtomic(path, "stable\n", 1).ok());
  const std::string before = ReadWholeFile(path);
  for (const char* point :
       {"io.write.open", "io.write.flush", "io.write.fsync", "io.write.rename"}) {
    failpoint::Activate(point, failpoint::Spec{});
    EXPECT_FALSE(WriteArtifactAtomic(path, "doomed\n", 1).ok()) << point;
    failpoint::DeactivateAll();
    EXPECT_EQ(ReadWholeFile(path), before) << point;
  }
  std::remove(path.c_str());
}

TEST_F(AtomicFileTest, InjectedChecksumMismatchFailsStrictLoads) {
  const std::string path = TempPath("atomic_badsum.tsv");
  ASSERT_TRUE(WriteArtifactAtomic(path, "row\n", 1).ok());
  failpoint::Activate("io.read.checksum", failpoint::Spec{});
  const auto strict = ReadArtifact(path);
  EXPECT_EQ(strict.status().code(), StatusCode::kIOError);

  LoadOptions salvage;
  salvage.recovery = LoadOptions::Recovery::kSkipAndLog;
  const auto salvaged = ReadArtifact(path, salvage);
  ASSERT_TRUE(salvaged.ok());
  EXPECT_FALSE(salvaged->checksum_ok);
  failpoint::DeactivateAll();
  std::remove(path.c_str());
}

TEST_F(AtomicFileTest, RetryRidesOutATransientWriteFault) {
  const std::string path = TempPath("atomic_retry.tsv");
  failpoint::Spec spec;
  spec.mode = failpoint::Spec::Mode::kNth;
  spec.nth = 1;  // First attempt fails, the retry succeeds.
  failpoint::Activate("io.write.fsync", spec);
  RetryOptions retry;
  retry.initial_backoff_ms = 0;
  const Status status =
      RetryWithBackoff([&] { return WriteArtifactAtomic(path, "persistent\n", 1); }, retry);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(failpoint::FireCount("io.write.fsync"), 1);
  auto content = ReadArtifact(path);
  ASSERT_TRUE(content.ok());
  EXPECT_TRUE(content->checksum_ok);
  std::remove(path.c_str());
}

TEST_F(AtomicFileTest, CreateDirectoriesMakesNestedPaths) {
  const std::string dir = TempPath("nested/a/b/c");
  ASSERT_TRUE(CreateDirectories(dir).ok());
  ASSERT_TRUE(CreateDirectories(dir).ok());  // Idempotent.
  const std::string path = dir + "/file.tsv";
  EXPECT_TRUE(WriteFileAtomic(path, "x\n").ok());
  std::remove(path.c_str());
}

TEST_F(AtomicFileTest, MissingFileIsIOError) {
  EXPECT_EQ(ReadArtifact("/nonexistent/never.tsv").status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace microbrowse
