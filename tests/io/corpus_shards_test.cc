// Copyright 2026 The Microbrowse Authors
//
// Sharded corpus round trips and the central streaming-parity claims: the
// shard-streaming stats and dataset builders must produce results bitwise
// identical to materialising the whole corpus and running the monolithic
// builders, and shard-set resolution must refuse incomplete or ambiguous
// sets rather than silently training on part of a corpus.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "corpus/generator.h"
#include "corpus/pair_extraction.h"
#include "io/corpus_shards.h"
#include "io/serialization.h"
#include "microbrowse/classifier.h"
#include "microbrowse/stats_db.h"

namespace microbrowse {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

AdCorpus MakeCorpus(uint64_t seed, int adgroups) {
  AdCorpusOptions options;
  options.num_adgroups = adgroups;
  options.seed = seed;
  auto generated = GenerateAdCorpus(options);
  EXPECT_TRUE(generated.ok());
  return generated->corpus;
}

TEST(ShardPathTest, SplicesTagBeforeExtension) {
  EXPECT_EQ(ShardPath("corpus.tsv", 3, 8), "corpus-00003-of-00008.tsv");
  EXPECT_EQ(ShardPath("/data/run/c.tsv", 0, 2), "/data/run/c-00000-of-00002.tsv");
  EXPECT_EQ(ShardPath("corpus", 1, 2), "corpus-00001-of-00002");
  EXPECT_EQ(ShardPath("a.b/corpus", 1, 2), "a.b/corpus-00001-of-00002");
}

TEST(ResolveCorpusShardsTest, MonolithicFileWins) {
  const std::string dir = FreshDir("resolve_mono");
  const AdCorpus corpus = MakeCorpus(3, 20);
  ASSERT_TRUE(SaveAdCorpus(corpus, dir + "/corpus.tsv").ok());
  auto resolved = ResolveCorpusShards(dir + "/corpus.tsv");
  ASSERT_TRUE(resolved.ok());
  EXPECT_FALSE(resolved->sharded);
  ASSERT_EQ(resolved->paths.size(), 1u);
  EXPECT_EQ(resolved->paths[0], dir + "/corpus.tsv");
}

TEST(ResolveCorpusShardsTest, FindsCompleteShardSetInIndexOrder) {
  const std::string dir = FreshDir("resolve_set");
  const AdCorpus corpus = MakeCorpus(5, 30);
  ASSERT_TRUE(SaveAdCorpusSharded(corpus, dir + "/corpus.tsv", 3).ok());
  auto resolved = ResolveCorpusShards(dir + "/corpus.tsv");
  ASSERT_TRUE(resolved.ok());
  EXPECT_TRUE(resolved->sharded);
  ASSERT_EQ(resolved->paths.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(resolved->paths[i], ShardPath(dir + "/corpus.tsv", i, 3));
  }
}

TEST(ResolveCorpusShardsTest, NothingThereIsNotFound) {
  const std::string dir = FreshDir("resolve_nothing");
  auto resolved = ResolveCorpusShards(dir + "/corpus.tsv");
  ASSERT_FALSE(resolved.ok());
  EXPECT_EQ(resolved.status().code(), StatusCode::kNotFound);
}

TEST(ResolveCorpusShardsTest, MissingMiddleShardIsNotFoundByName) {
  const std::string dir = FreshDir("resolve_gap");
  const AdCorpus corpus = MakeCorpus(7, 30);
  ASSERT_TRUE(SaveAdCorpusSharded(corpus, dir + "/corpus.tsv", 4).ok());
  ASSERT_TRUE(std::filesystem::remove(ShardPath(dir + "/corpus.tsv", 2, 4)));
  auto resolved = ResolveCorpusShards(dir + "/corpus.tsv");
  ASSERT_FALSE(resolved.ok());
  EXPECT_EQ(resolved.status().code(), StatusCode::kNotFound);
  EXPECT_NE(resolved.status().message().find("00002-of-00004"), std::string::npos);
}

TEST(ResolveCorpusShardsTest, MixedShardCountsAreRefused) {
  const std::string dir = FreshDir("resolve_mixed");
  const AdCorpus corpus = MakeCorpus(9, 30);
  ASSERT_TRUE(SaveAdCorpusSharded(corpus, dir + "/corpus.tsv", 2).ok());
  // A leftover shard from an older 3-way generation overlapping the 2-way
  // set: ambiguous, must refuse rather than pick one.
  ASSERT_TRUE(SaveAdCorpus(corpus, ShardPath(dir + "/corpus.tsv", 1, 3)).ok());
  auto resolved = ResolveCorpusShards(dir + "/corpus.tsv");
  ASSERT_FALSE(resolved.ok());
  EXPECT_EQ(resolved.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(resolved.status().message().find("mixed shard counts"), std::string::npos);
}

TEST(ResolveCorpusShardsTest, OutOfRangeShardIndexIsRefused) {
  const std::string dir = FreshDir("resolve_oob");
  const AdCorpus corpus = MakeCorpus(11, 20);
  ASSERT_TRUE(SaveAdCorpus(corpus, ShardPath(dir + "/corpus.tsv", 5, 4)).ok());
  auto resolved = ResolveCorpusShards(dir + "/corpus.tsv");
  ASSERT_FALSE(resolved.ok());
  EXPECT_EQ(resolved.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ResolveCorpusShardsTest, SimilarlyNamedSiblingsAreIgnored) {
  const std::string dir = FreshDir("resolve_siblings");
  const AdCorpus corpus = MakeCorpus(13, 20);
  ASSERT_TRUE(SaveAdCorpusSharded(corpus, dir + "/corpus.tsv", 2).ok());
  // Different stems or extensions must not join the set.
  ASSERT_TRUE(SaveAdCorpus(corpus, dir + "/corpus2-00000-of-00002.tsv").ok());
  ASSERT_TRUE(SaveAdCorpus(corpus, dir + "/corpus-00000-of-00002.tsv.bak").ok());
  auto resolved = ResolveCorpusShards(dir + "/corpus.tsv");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->paths.size(), 2u);
}

TEST(ShardRoundTripTest, ShardedSaveLoadPreservesEveryAdGroup) {
  const std::string dir = FreshDir("roundtrip");
  const AdCorpus corpus = MakeCorpus(17, 50);
  ASSERT_TRUE(SaveAdCorpusSharded(corpus, dir + "/corpus.tsv", 4).ok());
  auto resolved = ResolveCorpusShards(dir + "/corpus.tsv");
  ASSERT_TRUE(resolved.ok());
  ShardLoadReport report;
  auto loaded = LoadShardedAdCorpus(*resolved, {}, &report);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(report.shards_total, 4u);
  EXPECT_EQ(report.shards_loaded, 4u);
  EXPECT_EQ(report.shards_skipped, 0u);
  EXPECT_EQ(static_cast<size_t>(report.adgroups), corpus.adgroups.size());
  EXPECT_EQ(loaded->adgroups.size(), corpus.adgroups.size());
  EXPECT_EQ(loaded->placement, corpus.placement);
  // Round-robin sharding reorders adgroups; ids must all survive.
  std::vector<int64_t> original_ids, loaded_ids;
  for (const AdGroup& group : corpus.adgroups) original_ids.push_back(group.id);
  for (const AdGroup& group : loaded->adgroups) loaded_ids.push_back(group.id);
  std::sort(original_ids.begin(), original_ids.end());
  std::sort(loaded_ids.begin(), loaded_ids.end());
  EXPECT_EQ(loaded_ids, original_ids);
}

TEST(ShardStreamingTest, SkipAndLogSkipsWholeBadShardWithAccounting) {
  const std::string dir = FreshDir("stream_salvage");
  const AdCorpus corpus = MakeCorpus(19, 40);
  ASSERT_TRUE(SaveAdCorpusSharded(corpus, dir + "/corpus.tsv", 4).ok());
  {
    std::ofstream out(ShardPath(dir + "/corpus.tsv", 1, 4), std::ios::trunc);
    out << "this is not an adcorpus artifact\n";
  }
  auto resolved = ResolveCorpusShards(dir + "/corpus.tsv");
  ASSERT_TRUE(resolved.ok());

  // Strict: the first bad shard fails the stream, naming the shard.
  ShardLoadReport strict_report;
  auto strict = LoadShardedAdCorpus(*resolved, {}, &strict_report);
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.status().message().find("00001-of-00004"), std::string::npos);

  // Salvage: the bad shard is skipped whole, everything else loads, and
  // the report says exactly what happened — no silent mistraining.
  LoadOptions salvage;
  salvage.recovery = LoadOptions::Recovery::kSkipAndLog;
  ShardLoadReport report;
  auto loaded = LoadShardedAdCorpus(*resolved, salvage, &report);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(report.shards_total, 4u);
  EXPECT_EQ(report.shards_loaded, 3u);
  EXPECT_EQ(report.shards_skipped, 1u);
  EXPECT_NE(report.first_error.find("00001-of-00004"), std::string::npos);
  EXPECT_LT(loaded->adgroups.size(), corpus.adgroups.size());
  EXPECT_GT(loaded->adgroups.size(), 0u);
}

TEST(ShardStreamingTest, StatsBuildMatchesMonolithicBitwise) {
  const std::string dir = FreshDir("stream_stats");
  const AdCorpus corpus = MakeCorpus(21, 60);
  ASSERT_TRUE(SaveAdCorpusSharded(corpus, dir + "/corpus.tsv", 3).ok());
  auto resolved = ResolveCorpusShards(dir + "/corpus.tsv");
  ASSERT_TRUE(resolved.ok());

  BuildStatsOptions options;
  options.num_threads = 2;
  ShardLoadReport report;
  auto streamed = BuildFeatureStatsSharded(*resolved, {}, options, {}, &report);
  ASSERT_TRUE(streamed.ok());
  EXPECT_EQ(report.shards_loaded, 3u);
  EXPECT_GT(report.pairs, 0);

  // Reference: materialise the shard set, then the monolithic builder.
  auto materialized = LoadShardedAdCorpus(*resolved, {});
  ASSERT_TRUE(materialized.ok());
  const PairCorpus pairs = ExtractSignificantPairs(*materialized, {});
  ASSERT_EQ(static_cast<int64_t>(pairs.pairs.size()), report.pairs);
  const FeatureStatsDb reference = BuildFeatureStats(pairs, options);

  ASSERT_EQ(streamed->size(), reference.size());
  for (const auto& [key, stat] : reference.stats()) {
    const FeatureStat* other = streamed->Find(key);
    ASSERT_NE(other, nullptr) << key;
    EXPECT_EQ(other->positive, stat.positive) << key;
    EXPECT_EQ(other->total, stat.total) << key;
  }
  EXPECT_EQ(streamed->smoothing(), reference.smoothing());
  EXPECT_EQ(streamed->min_count(), reference.min_count());
}

TEST(ShardStreamingTest, CoupledCsrBuildMatchesMonolithicBitwise) {
  const std::string dir = FreshDir("stream_csr");
  const AdCorpus corpus = MakeCorpus(23, 60);
  ASSERT_TRUE(SaveAdCorpusSharded(corpus, dir + "/corpus.tsv", 3).ok());
  auto resolved = ResolveCorpusShards(dir + "/corpus.tsv");
  ASSERT_TRUE(resolved.ok());

  auto materialized = LoadShardedAdCorpus(*resolved, {});
  ASSERT_TRUE(materialized.ok());
  const PairCorpus pairs = ExtractSignificantPairs(*materialized, {});
  const FeatureStatsDb db = BuildFeatureStats(pairs, {});
  const ClassifierConfig config = ClassifierConfig::M6();
  constexpr uint64_t kSeed = 99;

  auto streamed = BuildCoupledCsrSharded(*resolved, db, config, kSeed, {}, {}, nullptr);
  ASSERT_TRUE(streamed.ok());
  const CoupledCsr reference =
      FlattenCoupledDataset(BuildClassifierDataset(pairs, db, config, kSeed));

  // Exact equality across every CSR array: same ids, same signs, same
  // labels, same warm-start weights — the streaming path IS the monolithic
  // path, minus the materialisation.
  EXPECT_EQ(streamed->csr.row_offsets, reference.row_offsets);
  EXPECT_EQ(streamed->csr.t_ids, reference.t_ids);
  EXPECT_EQ(streamed->csr.p_ids, reference.p_ids);
  EXPECT_EQ(streamed->csr.signs, reference.signs);
  EXPECT_EQ(streamed->csr.labels, reference.labels);
  EXPECT_EQ(streamed->csr.t_init, reference.t_init);
  EXPECT_EQ(streamed->csr.p_init, reference.p_init);
  ASSERT_GT(streamed->csr.size(), 0u);
  ASSERT_GT(streamed->csr.num_t_features(), 0u);
}

TEST(ShardStreamingTest, MonolithicPathThroughShardApiMatchesDirectLoad) {
  // A non-sharded ShardSetInfo (single file) must behave exactly like the
  // plain loader, so callers can route everything through the shard API.
  const std::string dir = FreshDir("stream_single");
  const AdCorpus corpus = MakeCorpus(27, 30);
  ASSERT_TRUE(SaveAdCorpus(corpus, dir + "/corpus.tsv").ok());
  auto resolved = ResolveCorpusShards(dir + "/corpus.tsv");
  ASSERT_TRUE(resolved.ok());
  ASSERT_FALSE(resolved->sharded);
  auto via_shards = LoadShardedAdCorpus(*resolved, {});
  auto direct = LoadAdCorpus(dir + "/corpus.tsv");
  ASSERT_TRUE(via_shards.ok());
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(via_shards->adgroups.size(), direct->adgroups.size());
  for (size_t g = 0; g < direct->adgroups.size(); ++g) {
    EXPECT_EQ(via_shards->adgroups[g].id, direct->adgroups[g].id);
    EXPECT_EQ(via_shards->adgroups[g].creatives.size(), direct->adgroups[g].creatives.size());
  }
}

TEST(ShardSaveTest, RejectsZeroShards) {
  const AdCorpus corpus = MakeCorpus(29, 5);
  EXPECT_EQ(SaveAdCorpusSharded(corpus, "unused.tsv", 0).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace microbrowse
