// Copyright 2026 The Microbrowse Authors
//
// Full-pipeline integration test mirroring the mbctl workflow:
// generate -> persist -> reload -> extract pairs -> build stats -> train ->
// persist model -> reload -> predict, checking consistency at every joint.

#include <gtest/gtest.h>

#include <cstdio>

#include "corpus/generator.h"
#include "corpus/pair_extraction.h"
#include "io/serialization.h"
#include "microbrowse/optimizer.h"
#include "microbrowse/pipeline.h"

namespace microbrowse {
namespace {

std::string TempPath(const std::string& name) { return ::testing::TempDir() + "/" + name; }

TEST(EndToEndTest, FullWorkflowThroughSerialization) {
  // 1. Generate and persist a corpus.
  AdCorpusOptions corpus_options;
  corpus_options.num_adgroups = 400;
  corpus_options.seed = 1234;
  auto generated = GenerateAdCorpus(corpus_options);
  ASSERT_TRUE(generated.ok());
  const std::string corpus_path = TempPath("e2e_corpus.tsv");
  ASSERT_TRUE(SaveAdCorpus(generated->corpus, corpus_path).ok());

  // 2. Reload and extract the pair corpus.
  auto corpus = LoadAdCorpus(corpus_path);
  ASSERT_TRUE(corpus.ok());
  const PairCorpus pairs = ExtractSignificantPairs(*corpus, {});
  ASSERT_GT(pairs.pairs.size(), 200u);

  // 3. Phase one: statistics; persist + reload round trip.
  const FeatureStatsDb db = BuildFeatureStats(pairs, {});
  const std::string stats_path = TempPath("e2e_stats.tsv");
  ASSERT_TRUE(SaveFeatureStats(db, stats_path).ok());
  auto db2 = LoadFeatureStats(stats_path);
  ASSERT_TRUE(db2.ok());
  ASSERT_EQ(db2->size(), db.size());

  // 4. Phase two: train M6 and persist the model.
  const ClassifierConfig config = ClassifierConfig::M6();
  const CoupledDataset dataset = BuildClassifierDataset(pairs, *db2, config, 7);
  auto model = TrainSnippetClassifier(dataset, config);
  ASSERT_TRUE(model.ok());
  const std::string model_path = TempPath("e2e_model.txt");
  ASSERT_TRUE(
      SaveClassifier(*model, dataset.t_registry, dataset.p_registry, model_path).ok());

  // 5. Reload the model: predictions must be identical to the in-memory
  // ones for pairs drawn from the corpus.
  auto saved = LoadClassifier(model_path);
  ASSERT_TRUE(saved.ok());
  int checked = 0;
  for (size_t i = 0; i < pairs.pairs.size() && checked < 25; i += 17, ++checked) {
    const auto& pair = pairs.pairs[i];
    const double in_memory =
        PredictPairMargin(pair.r.snippet, pair.s.snippet, *db2, config, *model,
                          dataset.t_registry, dataset.p_registry);
    const double reloaded =
        PredictPairMargin(pair.r.snippet, pair.s.snippet, *db2, config, saved->model,
                          saved->t_registry, saved->p_registry);
    EXPECT_NEAR(in_memory, reloaded, 1e-6) << "pair " << i;
  }

  // 6. The reloaded model still predicts the training signal direction:
  // accuracy on the training pairs is well above chance.
  int correct = 0;
  for (const auto& pair : pairs.pairs) {
    const double margin =
        PredictPairMargin(pair.r.snippet, pair.s.snippet, *db2, config, saved->model,
                          saved->t_registry, saved->p_registry);
    correct += ((margin >= 0) == (pair.r.serve_weight > pair.s.serve_weight)) ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(correct) / pairs.pairs.size(), 0.6);

  std::remove(corpus_path.c_str());
  std::remove(stats_path.c_str());
  std::remove(model_path.c_str());
}

TEST(EndToEndTest, OptimizerImprovesOnWeakReference) {
  AdCorpusOptions corpus_options;
  corpus_options.num_adgroups = 400;
  corpus_options.seed = 9;
  auto generated = GenerateAdCorpus(corpus_options);
  ASSERT_TRUE(generated.ok());
  const PairCorpus pairs = ExtractSignificantPairs(generated->corpus, {});
  const FeatureStatsDb db = BuildFeatureStats(pairs, {});
  const ClassifierConfig config = ClassifierConfig::M6();
  const CoupledDataset dataset = BuildClassifierDataset(pairs, db, config, 7);
  auto model = TrainSnippetClassifier(dataset, config);
  ASSERT_TRUE(model.ok());

  // Candidates from the travel pool; the reference uses weak phrases.
  SnippetCandidates candidates;
  candidates.brand = "jetscout";
  candidates.blocks = {{"browse flights to paris", "save big on flights to paris"},
                       {"24 7 support", "free cancellation"},
                       {"exclusive member deals", "20% off"}};
  const Snippet reference = Snippet::FromLines(
      {"jetscout", "browse flights to paris", "24 7 support exclusive member deals"});

  OptimizeOptions optimize_options;
  optimize_options.beam_width = 4;
  auto best = OptimizeSnippet(candidates, reference, db, config, *model,
                              dataset.t_registry, dataset.p_registry, optimize_options);
  ASSERT_TRUE(best.ok());
  EXPECT_GT(best->margin_over_reference, 0.0);
}

}  // namespace
}  // namespace microbrowse
