// Copyright 2026 The Microbrowse Authors
//
// Reproduces Table 4 of the paper: accuracy of the creative classifiers
// M1..M6 for TOP versus right-hand-side (RHS) ad placement. RHS users
// examine the ads far less, so the click data is noisier and every model's
// accuracy dips slightly below its TOP counterpart.
//
// Paper reference values:
//   M1 57.1 / 57.0    M2 65.7 / 65.1    M3 60.2 / 59.9
//   M4 71.1 / 70.8    M5 60.9 / 60.6    M6 71.4 / 71.1
//
// Environment: MB_ADGROUPS, MB_FOLDS, MB_SEED.

#include <cstdio>
#include <iostream>

#include "common/csv.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "eval/experiments.h"

int main() {
  using namespace microbrowse;

  ExperimentOptions options;
  options.num_adgroups = static_cast<int>(EnvInt("MB_ADGROUPS", 6000));
  options.folds = static_cast<int>(EnvInt("MB_FOLDS", 5));
  options.seed = static_cast<uint64_t>(EnvInt("MB_SEED", 2026));

  auto result = RunTable4(options);
  if (!result.ok()) {
    std::fprintf(stderr, "Table 4 experiment failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  TablePrinter table(StrFormat(
      "TABLE 4: ACCURACY OF CREATIVE CLASSIFICATION IN DIFFERENT CONFIGURATION (TOP VS. RHS)\n"
      "(%zu top pairs, %zu rhs pairs, %d-fold CV)",
      result->top_pairs, result->rhs_pairs, options.folds));
  table.SetHeader({"Feature", "Top", "Rhs"});
  const char* kDescriptions[] = {"Terms only",       "Terms w. position",
                                 "Rewrites only",    "Rewrites w. position",
                                 "Rewrites and terms", "Rewrites and terms w. position"};
  CsvWriter csv;
  if (!csv.Open("table4.csv").ok()) std::fprintf(stderr, "warning: cannot write table4.csv\n");
  if (csv.is_open()) (void)csv.WriteRow({"model", "top_accuracy", "rhs_accuracy"});
  for (size_t i = 0; i < result->rows.size(); ++i) {
    const Table4Row& row = result->rows[i];
    table.AddRow({StrFormat("%s: %s", row.model.c_str(), kDescriptions[i]),
                  FormatPercent(row.top_accuracy), FormatPercent(row.rhs_accuracy)});
    if (csv.is_open()) {
      (void)csv.WriteRow({row.model, FormatDouble(row.top_accuracy, 4),
                          FormatDouble(row.rhs_accuracy, 4)});
    }
  }
  (void)csv.Close();
  table.Print(std::cout);
  std::printf("\nPaper (ADCORPUS): top/rhs — M1 57.1/57.0, M2 65.7/65.1, M3 60.2/59.9, "
              "M4 71.1/70.8, M5 60.9/60.6, M6 71.4/71.1\nWrote table4.csv\n");
  return 0;
}
