// Copyright 2026 The Microbrowse Authors
//
// Training-path benchmark: sweeps solver x thread count x corpus size over
// a synthetic planted-model corpus, asserting that the parallel proximal
// solver reproduces the single-thread weights bit for bit (the determinism
// contract of DESIGN.md section 11) and reporting throughput to stdout and
// BENCH_train.json.
//
// The speedup target (>= 3x examples/sec at 8 threads vs 1 on the
// proximal-batch solver, 100k-pair corpus) is enforced only on hardware
// with >= 8 cores and a large-enough corpus — a single-core CI box cannot
// demonstrate scaling — but the bitwise determinism check is enforced
// everywhere, at every sweep point. Set MB_REQUIRE_SPEEDUP=1 to force the
// speedup gate regardless of detected hardware.
//
// Environment: MB_TRAIN_PAIRS (default 100000), MB_TRAIN_FEATURES (32768),
// MB_TRAIN_NNZ (32), MB_TRAIN_EPOCHS (5), MB_TRAIN_REPS (3), MB_SEED,
// MB_BENCH_OUT (default BENCH_train.json), MB_REQUIRE_SPEEDUP.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/math_util.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "eval/experiments.h"
#include "ml/csr.h"
#include "ml/logistic_regression.h"

using namespace microbrowse;

namespace {

/// Builds a synthetic sparse corpus directly in CSR form: a planted
/// Gaussian truth model scores each row's random features, and the label
/// is a Bernoulli draw of the sigmoid score — so the solvers face a
/// realistically noisy, realistically solvable problem.
CsrDataset MakeSyntheticCorpus(size_t n, size_t n_features, size_t nnz, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> truth(n_features);
  for (double& w : truth) w = rng.Gaussian(0.0, 0.5);

  CsrDataset data;
  data.num_features = n_features;
  data.row_offsets.reserve(n + 1);
  data.ids.reserve(n * nnz);
  data.values.reserve(n * nnz);
  data.labels.reserve(n);
  data.weights.assign(n, 1.0);
  data.offsets.assign(n, 0.0);
  data.row_offsets.push_back(0);
  for (size_t i = 0; i < n; ++i) {
    double score = 0.0;
    for (size_t k = 0; k < nnz; ++k) {
      const FeatureId id = static_cast<FeatureId>(rng.NextIndex(n_features));
      const double value = rng.Uniform(0.5, 1.5);
      data.ids.push_back(id);
      data.values.push_back(value);
      score += value * truth[id];
    }
    data.labels.push_back(rng.Bernoulli(Sigmoid(score)) ? 1.0 : 0.0);
    data.row_offsets.push_back(data.ids.size());
  }
  return data;
}

struct SweepPoint {
  std::string solver;
  size_t pairs = 0;
  int threads = 0;
  double train_p50_seconds = 0.0;
  double epoch_p50_seconds = 0.0;
  double examples_per_sec = 0.0;
  double speedup_vs_1_thread = 1.0;
  bool deterministic = true;
};

/// Median of a small sample.
double Median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Bitwise model equality: the determinism contract is exact, not
/// approximate, so no tolerance is involved.
bool BitwiseEqual(const LogisticModel& a, const LogisticModel& b) {
  return a.bias() == b.bias() && a.weights() == b.weights();
}

void WriteBenchJson(const std::string& path, const std::vector<SweepPoint>& points,
                    double headline_speedup, bool speedup_enforced) {
  // Plain ofstream on purpose: WriteArtifactAtomic appends a checksum
  // footer that would corrupt the JSON.
  std::ofstream out(path, std::ios::trunc);
  out << "{\n  \"bench\": \"train\",\n";
  out << "  \"target\": {\n"
      << "    \"description\": \"proximal-batch examples/sec at 8 threads >= 3x 1 thread\",\n"
      << "    \"min_speedup\": 3.0,\n"
      << StrFormat("    \"measured_speedup\": %.4f,\n", headline_speedup)
      << "    \"enforced\": " << (speedup_enforced ? "true" : "false") << "\n  },\n";
  out << "  \"sweep\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    out << "    {"
        << "\"solver\": \"" << p.solver << "\", "
        << StrFormat("\"pairs\": %zu, \"threads\": %d, ", p.pairs, p.threads)
        << StrFormat("\"train_p50_seconds\": %.6f, ", p.train_p50_seconds)
        << StrFormat("\"epoch_p50_seconds\": %.6f, ", p.epoch_p50_seconds)
        << StrFormat("\"examples_per_sec\": %.1f, ", p.examples_per_sec)
        << StrFormat("\"speedup_vs_1_thread\": %.4f, ", p.speedup_vs_1_thread)
        << "\"deterministic\": " << (p.deterministic ? "true" : "false") << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main() {
  const size_t pairs = static_cast<size_t>(EnvInt("MB_TRAIN_PAIRS", 100000));
  const size_t n_features = static_cast<size_t>(EnvInt("MB_TRAIN_FEATURES", 32768));
  const size_t nnz = static_cast<size_t>(EnvInt("MB_TRAIN_NNZ", 32));
  const int epochs = static_cast<int>(EnvInt("MB_TRAIN_EPOCHS", 5));
  const int reps = static_cast<int>(std::max<int64_t>(1, EnvInt("MB_TRAIN_REPS", 3)));
  const uint64_t seed = static_cast<uint64_t>(EnvInt("MB_SEED", 2026));
  const std::string out_path = [] {
    const char* env = std::getenv("MB_BENCH_OUT");
    return env != nullptr && *env != '\0' ? std::string(env) : std::string("BENCH_train.json");
  }();

  const std::vector<size_t> sizes = pairs > 10000 ? std::vector<size_t>{pairs / 10, pairs}
                                                  : std::vector<size_t>{pairs};
  const std::vector<int> thread_counts = {1, 2, 4, 8};
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("train_bench: %zu features, nnz=%zu, %d epochs, %d reps, %u hardware threads\n\n",
              n_features, nnz, epochs, reps, hw);

  TablePrinter table("TRAINING: solver x threads x corpus size (bitwise-deterministic)");
  table.SetHeader({"Solver", "Pairs", "Threads", "Epoch p50 ms", "Examples/s", "Speedup",
                   "Bitwise"});

  std::vector<SweepPoint> points;
  double headline_speedup = 0.0;
  size_t headline_pairs = 0;
  bool all_deterministic = true;

  for (size_t n : sizes) {
    const CsrDataset data = MakeSyntheticCorpus(n, n_features, nnz, seed);
    for (const char* solver_name : {"adagrad", "proximal_batch"}) {
      LrOptions options;
      options.solver =
          std::string(solver_name) == "adagrad" ? LrSolver::kAdaGrad : LrSolver::kProximalBatch;
      options.epochs = epochs;
      options.tolerance = 0.0;  // Fixed epoch count: time per epoch is comparable.

      LogisticModel reference;
      double reference_p50 = 0.0;
      for (int threads : thread_counts) {
        options.num_threads = threads;
        std::vector<double> times;
        LogisticModel model;
        for (int rep = 0; rep < reps; ++rep) {
          WallTimer timer;
          auto trained = TrainLogisticRegression(data, options);
          times.push_back(timer.ElapsedSeconds());
          if (!trained.ok()) {
            std::fprintf(stderr, "train_bench: training failed: %s\n",
                         trained.status().ToString().c_str());
            return 1;
          }
          model = std::move(*trained);
        }
        SweepPoint point;
        point.solver = solver_name;
        point.pairs = n;
        point.threads = threads;
        point.train_p50_seconds = Median(times);
        point.epoch_p50_seconds = point.train_p50_seconds / std::max(1, epochs);
        point.examples_per_sec = static_cast<double>(n) * epochs / point.train_p50_seconds;
        if (threads == 1) {
          reference = model;
          reference_p50 = point.train_p50_seconds;
        } else {
          point.speedup_vs_1_thread = reference_p50 / std::max(1e-12, point.train_p50_seconds);
          point.deterministic = BitwiseEqual(model, reference);
          all_deterministic = all_deterministic && point.deterministic;
        }
        if (options.solver == LrSolver::kProximalBatch && threads == 8 &&
            n >= headline_pairs) {
          headline_pairs = n;
          headline_speedup = point.speedup_vs_1_thread;
        }
        table.AddRow({point.solver, StrFormat("%zu", n), StrFormat("%d", threads),
                      StrFormat("%.3f", point.epoch_p50_seconds * 1e3),
                      StrFormat("%.0f", point.examples_per_sec),
                      StrFormat("%.2fx", point.speedup_vs_1_thread),
                      point.deterministic ? "yes" : "NO"});
        points.push_back(point);
      }
    }
  }
  table.Print(std::cout);

  // The speedup gate needs hardware that can actually run 8 workers and a
  // corpus big enough that per-epoch parallel overhead is amortised.
  const bool speedup_enforced =
      EnvInt("MB_REQUIRE_SPEEDUP", 0) != 0 || (hw >= 8 && headline_pairs >= 50000);
  WriteBenchJson(out_path, points, headline_speedup, speedup_enforced);
  std::printf("\nwrote %s\n", out_path.c_str());

  if (!all_deterministic) {
    std::fprintf(stderr,
                 "train_bench: FAIL — parallel training diverged from the 1-thread weights\n");
    return 1;
  }
  std::printf("determinism: all sweep points bitwise identical to 1 thread\n");
  std::printf("proximal-batch 8-thread speedup on %zu pairs: %.2fx (target >= 3x, %s)\n",
              headline_pairs, headline_speedup,
              speedup_enforced ? (headline_speedup >= 3.0 ? "met" : "NOT met")
                               : "not enforced on this hardware");
  if (speedup_enforced && headline_speedup < 3.0) return 1;
  return 0;
}
