// Copyright 2026 The Microbrowse Authors
//
// Training-path benchmark: sweeps solver x thread count x corpus size over
// a synthetic planted-model corpus, asserting that the parallel proximal
// solver reproduces the single-thread weights bit for bit (the determinism
// contract of DESIGN.md section 11) and reporting throughput to stdout and
// BENCH_train.json.
//
// The speedup target (>= 3x examples/sec at 8 threads vs 1 on the
// proximal-batch solver, >= 100k-pair corpora) is evaluated by the shared
// gate in eval/train_gate.h: enforced on hardware with >= 8 cores when the
// sweep contains a gateable point, or always under MB_REQUIRE_SPEEDUP=1.
// The bitwise determinism check is enforced everywhere, at every sweep
// point, under whichever SIMD kernel the dispatcher selected (MB_SIMD
// overrides; the kernel name is recorded in the JSON).
//
// Before the sweep allocates anything, an optional STREAMING stage
// (MB_TRAIN_STREAM_PAIRS > 0) exercises the sharded-corpus training path
// end to end: generate a sharded ad corpus shard by shard, stream feature
// statistics and the coupled CSR over it with bounded memory, train, and
// assert the process peak RSS stayed under MB_TRAIN_RSS_CAP_MB. This is
// the million-pair bounded-memory proof — the stage never materialises the
// corpus, so peak memory is one shard plus the CSR and model.
//
// Environment: MB_TRAIN_PAIRS (default 100000), MB_TRAIN_FEATURES (32768),
// MB_TRAIN_NNZ (32), MB_TRAIN_EPOCHS (5), MB_TRAIN_REPS (3), MB_SEED,
// MB_BENCH_OUT (default BENCH_train.json), MB_REQUIRE_SPEEDUP,
// MB_TRAIN_STREAM_PAIRS (0 = skip), MB_TRAIN_STREAM_SHARDS (16),
// MB_TRAIN_STREAM_PASSES (1), MB_TRAIN_STREAM_THREADS (8),
// MB_TRAIN_STREAM_EPOCHS (3), MB_TRAIN_RSS_CAP_MB (4096, 0 = report only).

#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/math_util.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "corpus/generator.h"
#include "eval/experiments.h"
#include "eval/train_gate.h"
#include "io/corpus_shards.h"
#include "io/serialization.h"
#include "microbrowse/classifier.h"
#include "microbrowse/stats_db.h"
#include "ml/csr.h"
#include "ml/logistic_regression.h"
#include "ml/simd.h"

using namespace microbrowse;

namespace {

/// Process peak resident set, in MiB (ru_maxrss is KiB on Linux).
double PeakRssMb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

/// Builds a synthetic sparse corpus directly in CSR form: a planted
/// Gaussian truth model scores each row's random features, and the label
/// is a Bernoulli draw of the sigmoid score — so the solvers face a
/// realistically noisy, realistically solvable problem.
CsrDataset MakeSyntheticCorpus(size_t n, size_t n_features, size_t nnz, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> truth(n_features);
  for (double& w : truth) w = rng.Gaussian(0.0, 0.5);

  CsrDataset data;
  data.num_features = n_features;
  data.row_offsets.reserve(n + 1);
  data.ids.reserve(n * nnz);
  data.values.reserve(n * nnz);
  data.labels.reserve(n);
  data.weights.assign(n, 1.0);
  data.offsets.assign(n, 0.0);
  data.row_offsets.push_back(0);
  for (size_t i = 0; i < n; ++i) {
    double score = 0.0;
    for (size_t k = 0; k < nnz; ++k) {
      const FeatureId id = static_cast<FeatureId>(rng.NextIndex(n_features));
      const double value = rng.Uniform(0.5, 1.5);
      data.ids.push_back(id);
      data.values.push_back(value);
      score += value * truth[id];
    }
    data.labels.push_back(rng.Bernoulli(Sigmoid(score)) ? 1.0 : 0.0);
    data.row_offsets.push_back(data.ids.size());
  }
  return data;
}

struct SweepPoint {
  std::string solver;
  size_t pairs = 0;
  int threads = 0;
  double train_p50_seconds = 0.0;
  double epoch_p50_seconds = 0.0;
  double examples_per_sec = 0.0;
  double speedup_vs_1_thread = 1.0;
  /// The 8-thread speedup of this point's (solver, pairs) group — the gate
  /// metric, repeated on every point of the group so each JSON record is
  /// self-contained.
  double speedup_8t = 0.0;
  bool deterministic = true;
};

/// Result of the sharded-streaming stage.
struct StreamStage {
  bool ran = false;
  bool ok = false;
  std::string error;
  size_t requested_pairs = 0;
  size_t shards = 0;
  size_t adgroups = 0;
  int64_t pairs = 0;
  size_t t_features = 0;
  double generate_seconds = 0.0;
  double stats_seconds = 0.0;
  double train_seconds = 0.0;  ///< CSR streaming + solver.
  double peak_rss_mb = 0.0;
  double rss_cap_mb = 0.0;  ///< 0 = report only.
};

/// Generates a sharded ad corpus shard by shard (one shard resident at a
/// time), streams stats + the coupled CSR over it and trains M1. Runs
/// FIRST so the process peak RSS reflects the streaming path, not the
/// sweep's dense allocations.
StreamStage RunStreamingStage(uint64_t seed) {
  StreamStage stage;
  stage.requested_pairs = static_cast<size_t>(EnvInt("MB_TRAIN_STREAM_PAIRS", 0));
  if (stage.requested_pairs == 0) return stage;
  stage.ran = true;
  stage.shards = static_cast<size_t>(std::max<int64_t>(1, EnvInt("MB_TRAIN_STREAM_SHARDS", 16)));
  stage.rss_cap_mb = static_cast<double>(EnvInt("MB_TRAIN_RSS_CAP_MB", 4096));
  // The synthetic generator yields ~3 significant pairs per adgroup at the
  // default creative counts.
  stage.adgroups = std::max<size_t>(stage.shards, stage.requested_pairs / 3);

  const std::string dir = "train_bench_stream_shards";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string base = dir + "/corpus.tsv";

  WallTimer gen_timer;
  for (size_t s = 0; s < stage.shards; ++s) {
    AdCorpusOptions options;
    options.num_adgroups = static_cast<int>((stage.adgroups + s) / stage.shards);
    options.seed = seed + 0x9e3779b97f4a7c15ULL * (s + 1);
    auto generated = GenerateAdCorpus(options);
    if (!generated.ok()) {
      stage.error = generated.status().ToString();
      return stage;
    }
    const Status saved = SaveAdCorpus(generated->corpus, ShardPath(base, s, stage.shards));
    if (!saved.ok()) {
      stage.error = saved.ToString();
      return stage;
    }
  }
  stage.generate_seconds = gen_timer.ElapsedSeconds();

  auto resolved = ResolveCorpusShards(base);
  if (!resolved.ok()) {
    stage.error = resolved.status().ToString();
    return stage;
  }

  BuildStatsOptions stats_options;
  stats_options.matching_passes = static_cast<int>(EnvInt("MB_TRAIN_STREAM_PASSES", 1));
  stats_options.num_threads = static_cast<int>(EnvInt("MB_TRAIN_STREAM_THREADS", 8));
  WallTimer stats_timer;
  ShardLoadReport report;
  auto db = BuildFeatureStatsSharded(*resolved, {}, stats_options, {}, &report);
  stage.stats_seconds = stats_timer.ElapsedSeconds();
  if (!db.ok()) {
    stage.error = db.status().ToString();
    return stage;
  }
  stage.pairs = report.pairs;

  ClassifierConfig config = ClassifierConfig::M1();
  config.lr.num_threads = stats_options.num_threads;
  config.lr.epochs = static_cast<int>(EnvInt("MB_TRAIN_STREAM_EPOCHS", 3));
  WallTimer train_timer;
  auto data = BuildCoupledCsrSharded(*resolved, *db, config, seed, {}, {});
  if (!data.ok()) {
    stage.error = data.status().ToString();
    return stage;
  }
  auto model = TrainSnippetClassifier(data->csr, config);
  stage.train_seconds = train_timer.ElapsedSeconds();
  if (!model.ok()) {
    stage.error = model.status().ToString();
    return stage;
  }
  stage.t_features = data->csr.num_t_features();

  std::filesystem::remove_all(dir);
  stage.peak_rss_mb = PeakRssMb();
  stage.ok = stage.rss_cap_mb <= 0.0 || stage.peak_rss_mb <= stage.rss_cap_mb;
  if (!stage.ok) {
    stage.error = StrFormat("peak RSS %.1f MiB exceeds cap %.0f MiB", stage.peak_rss_mb,
                            stage.rss_cap_mb);
  }
  return stage;
}

/// Median of a small sample.
double Median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Bitwise model equality: the determinism contract is exact, not
/// approximate, so no tolerance is involved.
bool BitwiseEqual(const LogisticModel& a, const LogisticModel& b) {
  return a.bias() == b.bias() && a.weights() == b.weights();
}

void WriteBenchJson(const std::string& path, const std::vector<SweepPoint>& points,
                    const StreamStage& stream, const TrainGateResult& gate) {
  // Plain ofstream on purpose: WriteArtifactAtomic appends a checksum
  // footer that would corrupt the JSON.
  std::ofstream out(path, std::ios::trunc);
  out << "{\n  \"bench\": \"train\",\n";
  out << "  \"kernel\": \"" << simd::KernelName(simd::ActiveKernel()) << "\",\n";
  out << "  \"target\": {\n"
      << "    \"description\": \"proximal-batch examples/sec at 8 threads >= 3x 1 thread on "
         ">= 100k pairs\",\n"
      << "    \"min_speedup\": 3.0,\n"
      << StrFormat("    \"measured_speedup\": %.4f,\n", gate.headline_speedup)
      << StrFormat("    \"measured_pairs\": %zu,\n", gate.headline_pairs)
      << "    \"enforced\": " << (gate.enforced ? "true" : "false") << ",\n"
      << "    \"passed\": " << (gate.passed ? "true" : "false") << "\n  },\n";
  if (stream.ran) {
    out << "  \"stream\": {\n"
        << StrFormat("    \"requested_pairs\": %zu,\n", stream.requested_pairs)
        << StrFormat("    \"pairs\": %lld,\n", static_cast<long long>(stream.pairs))
        << StrFormat("    \"shards\": %zu,\n", stream.shards)
        << StrFormat("    \"adgroups\": %zu,\n", stream.adgroups)
        << StrFormat("    \"t_features\": %zu,\n", stream.t_features)
        << StrFormat("    \"generate_seconds\": %.3f,\n", stream.generate_seconds)
        << StrFormat("    \"stats_seconds\": %.3f,\n", stream.stats_seconds)
        << StrFormat("    \"train_seconds\": %.3f,\n", stream.train_seconds)
        << StrFormat("    \"peak_rss_mb\": %.1f,\n", stream.peak_rss_mb)
        << StrFormat("    \"rss_cap_mb\": %.0f,\n", stream.rss_cap_mb)
        << "    \"ok\": " << (stream.ok ? "true" : "false") << "\n  },\n";
  }
  out << "  \"sweep\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    out << "    {"
        << "\"solver\": \"" << p.solver << "\", "
        << StrFormat("\"pairs\": %zu, \"threads\": %d, ", p.pairs, p.threads)
        << StrFormat("\"train_p50_seconds\": %.6f, ", p.train_p50_seconds)
        << StrFormat("\"epoch_p50_seconds\": %.6f, ", p.epoch_p50_seconds)
        << StrFormat("\"examples_per_sec\": %.1f, ", p.examples_per_sec)
        << StrFormat("\"speedup_vs_1_thread\": %.4f, ", p.speedup_vs_1_thread)
        << StrFormat("\"speedup_8t\": %.4f, ", p.speedup_8t)
        << "\"deterministic\": " << (p.deterministic ? "true" : "false") << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main() {
  const size_t pairs = static_cast<size_t>(EnvInt("MB_TRAIN_PAIRS", 100000));
  const size_t n_features = static_cast<size_t>(EnvInt("MB_TRAIN_FEATURES", 32768));
  const size_t nnz = static_cast<size_t>(EnvInt("MB_TRAIN_NNZ", 32));
  const int epochs = static_cast<int>(EnvInt("MB_TRAIN_EPOCHS", 5));
  const int reps = static_cast<int>(std::max<int64_t>(1, EnvInt("MB_TRAIN_REPS", 3)));
  const uint64_t seed = static_cast<uint64_t>(EnvInt("MB_SEED", 2026));
  const std::string out_path = [] {
    const char* env = std::getenv("MB_BENCH_OUT");
    return env != nullptr && *env != '\0' ? std::string(env) : std::string("BENCH_train.json");
  }();

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("train_bench: %zu features, nnz=%zu, %d epochs, %d reps, %u hardware threads, "
              "%s kernels\n\n",
              n_features, nnz, epochs, reps, hw, simd::KernelName(simd::ActiveKernel()));

  // The bounded-memory streaming stage runs before the sweep touches any
  // dense buffers, so the recorded peak RSS belongs to the streaming path.
  const StreamStage stream = RunStreamingStage(seed);
  if (stream.ran) {
    std::printf("STREAMING: %lld pairs from %zu shards (%zu adgroups) — gen %.1fs, "
                "stats %.1fs, train %.1fs, peak RSS %.1f MiB (cap %s)\n\n",
                static_cast<long long>(stream.pairs), stream.shards, stream.adgroups,
                stream.generate_seconds, stream.stats_seconds, stream.train_seconds,
                stream.peak_rss_mb,
                stream.rss_cap_mb > 0.0 ? StrFormat("%.0f MiB", stream.rss_cap_mb).c_str()
                                        : "off");
    if (!stream.error.empty()) {
      std::fprintf(stderr, "train_bench: streaming stage FAILED: %s\n", stream.error.c_str());
    }
  }

  const std::vector<size_t> sizes = pairs > 10000 ? std::vector<size_t>{pairs / 10, pairs}
                                                  : std::vector<size_t>{pairs};
  const std::vector<int> thread_counts = {1, 2, 4, 8};

  TablePrinter table("TRAINING: solver x threads x corpus size (bitwise-deterministic)");
  table.SetHeader({"Solver", "Pairs", "Threads", "Epoch p50 ms", "Examples/s", "Speedup",
                   "Bitwise"});

  std::vector<SweepPoint> points;
  bool all_deterministic = true;

  for (size_t n : sizes) {
    const CsrDataset data = MakeSyntheticCorpus(n, n_features, nnz, seed);
    for (const char* solver_name : {"adagrad", "proximal_batch"}) {
      LrOptions options;
      options.solver =
          std::string(solver_name) == "adagrad" ? LrSolver::kAdaGrad : LrSolver::kProximalBatch;
      options.epochs = epochs;
      options.tolerance = 0.0;  // Fixed epoch count: time per epoch is comparable.

      LogisticModel reference;
      double reference_p50 = 0.0;
      const size_t group_begin = points.size();
      for (int threads : thread_counts) {
        options.num_threads = threads;
        std::vector<double> times;
        LogisticModel model;
        for (int rep = 0; rep < reps; ++rep) {
          WallTimer timer;
          auto trained = TrainLogisticRegression(data, options);
          times.push_back(timer.ElapsedSeconds());
          if (!trained.ok()) {
            std::fprintf(stderr, "train_bench: training failed: %s\n",
                         trained.status().ToString().c_str());
            return 1;
          }
          model = std::move(*trained);
        }
        SweepPoint point;
        point.solver = solver_name;
        point.pairs = n;
        point.threads = threads;
        point.train_p50_seconds = Median(times);
        point.epoch_p50_seconds = point.train_p50_seconds / std::max(1, epochs);
        point.examples_per_sec = static_cast<double>(n) * epochs / point.train_p50_seconds;
        if (threads == 1) {
          reference = model;
          reference_p50 = point.train_p50_seconds;
        } else {
          point.speedup_vs_1_thread = reference_p50 / std::max(1e-12, point.train_p50_seconds);
          point.deterministic = BitwiseEqual(model, reference);
          all_deterministic = all_deterministic && point.deterministic;
        }
        table.AddRow({point.solver, StrFormat("%zu", n), StrFormat("%d", threads),
                      StrFormat("%.3f", point.epoch_p50_seconds * 1e3),
                      StrFormat("%.0f", point.examples_per_sec),
                      StrFormat("%.2fx", point.speedup_vs_1_thread),
                      point.deterministic ? "yes" : "NO"});
        points.push_back(point);
      }
      // Stamp the group's 8-thread speedup onto every point of the group.
      double group_8t = 0.0;
      for (size_t i = group_begin; i < points.size(); ++i) {
        if (points[i].threads == 8) group_8t = points[i].speedup_vs_1_thread;
      }
      for (size_t i = group_begin; i < points.size(); ++i) points[i].speedup_8t = group_8t;
    }
  }
  table.Print(std::cout);

  TrainGateOptions gate_options;
  gate_options.require = EnvInt("MB_REQUIRE_SPEEDUP", 0) != 0;
  gate_options.hardware_threads = hw;
  std::vector<TrainGatePoint> gate_points;
  gate_points.reserve(points.size());
  for (const SweepPoint& p : points) {
    gate_points.push_back({p.solver, p.pairs, p.threads, p.speedup_vs_1_thread});
  }
  const TrainGateResult gate = EvaluateTrainGate(gate_points, gate_options);

  WriteBenchJson(out_path, points, stream, gate);
  std::printf("\nwrote %s\n", out_path.c_str());

  if (!all_deterministic) {
    std::fprintf(stderr,
                 "train_bench: FAIL — parallel training diverged from the 1-thread weights\n");
    return 1;
  }
  std::printf("determinism: all sweep points bitwise identical to 1 thread\n");
  if (gate.headline_pairs > 0) {
    std::printf("proximal-batch 8-thread speedup on %zu pairs: %.2fx (target >= 3x, %s)\n",
                gate.headline_pairs, gate.headline_speedup,
                gate.enforced ? (gate.passed ? "met" : "NOT met")
                              : "not enforced on this hardware");
  } else {
    std::printf("speedup gate: no sweep point at >= 100k pairs and 8 threads%s\n",
                gate.enforced ? " (vacuously passed)" : "");
  }
  if (stream.ran && !stream.ok) return 1;
  if (stream.ran && !stream.error.empty()) return 1;
  return gate.passed ? 0 : 1;
}
