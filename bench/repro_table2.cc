// Copyright 2026 The Microbrowse Authors
//
// Reproduces Table 2 of the paper: recall / precision / F-measure of the
// six snippet-classifier variants M1..M6 under 10-fold cross-validation.
//
// Paper reference values (proprietary ADCORPUS):
//   M1 55.9 / 58.2 / 0.570    M2 64.4 / 66.3 / 0.653
//   M3 59.0 / 61.2 / 0.601    M4 70.0 / 71.9 / 0.709
//   M5 59.7 / 61.8 / 0.607    M6 70.4 / 72.1 / 0.712
// The synthetic corpus will not match these absolute numbers; the target
// is the ordering M1 < M3 < M5 < M2 < M4 <= M6 and the large gap from
// position information.
//
// Environment: MB_ADGROUPS (corpus size), MB_FOLDS, MB_SEED.

#include <cstdio>
#include <iostream>

#include "common/csv.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "eval/experiments.h"

int main() {
  using namespace microbrowse;

  ExperimentOptions options;
  options.num_adgroups = static_cast<int>(EnvInt("MB_ADGROUPS", 12000));
  options.folds = static_cast<int>(EnvInt("MB_FOLDS", 10));
  options.seed = static_cast<uint64_t>(EnvInt("MB_SEED", 2026));

  auto result = RunTable2(options);
  if (!result.ok()) {
    std::fprintf(stderr, "Table 2 experiment failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  TablePrinter table(StrFormat(
      "TABLE 2: ACCURACY OF CREATIVE CLASSIFICATION USING DIFFERENT SETS OF FEATURES\n"
      "(%zu pairs from %zu adgroups, %d-fold CV)",
      result->num_pairs, result->num_adgroups, options.folds));
  table.SetHeader({"Feature", "Recall", "Precision", "F-Measure"});
  const char* kDescriptions[] = {"Terms only",        "Terms w. pos",
                                 "Rewrites only",     "Rewrites w. pos",
                                 "Rewrites & terms",  "Rewrites & terms w. pos"};
  CsvWriter csv;
  if (!csv.Open("table2.csv").ok()) std::fprintf(stderr, "warning: cannot write table2.csv\n");
  if (csv.is_open()) {
    (void)csv.WriteRow({"model", "recall", "precision", "f_measure", "accuracy", "auc"});
  }
  for (size_t i = 0; i < result->rows.size(); ++i) {
    const Table2Row& row = result->rows[i];
    table.AddRow({StrFormat("%s: %s", row.model.c_str(), kDescriptions[i]),
                  FormatPercent(row.recall), FormatPercent(row.precision),
                  FormatDouble(row.f_measure, 3)});
    if (csv.is_open()) {
      (void)csv.WriteRow({row.model, FormatDouble(row.recall, 4), FormatDouble(row.precision, 4),
                          FormatDouble(row.f_measure, 4), FormatDouble(row.accuracy, 4),
                          FormatDouble(row.auc, 4)});
    }
  }
  (void)csv.Close();
  table.Print(std::cout);
  std::printf("\nPaper (ADCORPUS): M1 F=0.570, M2 F=0.653, M3 F=0.601, M4 F=0.709, "
              "M5 F=0.607, M6 F=0.712\n");
  std::printf("Wrote table2.csv\n");
  return 0;
}
