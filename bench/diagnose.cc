// Copyright 2026 The Microbrowse Authors
//
// Diagnostic harness retained from tuning the reproduction: stats-database
// spot checks, pair-composition census, per-subset accuracies (move-only /
// multi-rewrite), an oracle-position upper bound, and learned position
// weights. Useful when adapting the generator or classifier; not part of
// the documented reproduction suite.
//
// Environment: MB_ADGROUPS (default 1200), MB_CNOISE_PCT, MB_IMPR,
// MB_FEATDUMP.

#include <cmath>
#include <cstdio>
#include <map>

#include "eval/experiments.h"
#include "microbrowse/feature_keys.h"

using namespace microbrowse;

int main() {
  ExperimentOptions options;
  options.num_adgroups = static_cast<int>(EnvInt("MB_ADGROUPS", 1200));
  options.folds = 5;
  options.corpus.creative_noise_sigma =
      static_cast<double>(EnvInt("MB_CNOISE_PCT", 10)) / 100.0;
  options.corpus.base_impressions = EnvInt("MB_IMPR", 400000);
  options.Normalize();
  auto pairs_r = MakePairCorpus(options, Placement::kTop);
  if (!pairs_r.ok()) return 1;
  const PairCorpus& pairs = *pairs_r;
  std::printf("pairs: %zu\n", pairs.pairs.size());

  // --- Stats DB sanity.
  const FeatureStatsDb db = BuildFeatureStats(pairs, options.pipeline.stats);
  std::printf("stats db size: %zu\n", db.size());
  for (const char* key :
       {"rw:browse=>save big on", "rw:find cheap=>get discounts on", "t:20% off", "t:browse",
        "t:free cancellation", "p:0:0", "p:1:0", "p:2:0", "p:2:4"}) {
    const FeatureStat* s = db.Find(key);
    if (s) {
      std::printf("  %-35s count=%6lld p=%.3f logodds=%+.3f\n", key,
                  static_cast<long long>(s->total), s->SmoothedP(), s->LogOdds());
    } else {
      std::printf("  %-35s (absent)\n", key);
    }
  }

  // --- Pair composition: how many pairs are pure moves (no text diff)?
  int move_only = 0, with_rewrites = 0, multi = 0;
  for (const auto& pair : pairs.pairs) {
    const PairDiff diff = MatchRewrites(pair.r.snippet, pair.s.snippet, &db);
    bool any_text_change = !diff.r_only.empty() || !diff.s_only.empty();
    int text_rewrites = 0;
    for (const auto& rw : diff.rewrites) {
      if (rw.r_span.text != rw.s_span.text) {
        any_text_change = true;
        ++text_rewrites;
      }
    }
    if (!any_text_change) ++move_only;
    if (text_rewrites > 0) ++with_rewrites;
    if (text_rewrites > 1) ++multi;
  }
  std::printf("move-only pairs: %d / %zu; with text rewrites: %d; multi-rewrite: %d\n",
              move_only, pairs.pairs.size(), with_rewrites, multi);

  // --- Feature-set comparison M2 vs M4d on a few pairs.
  if (EnvInt("MB_FEATDUMP", 0) > 0) {
    ClassifierConfig c2 = ClassifierConfig::M2();
    ClassifierConfig c4 = ClassifierConfig::M4();
    c4.drop_matched_rewrites = true;
    for (size_t pi = 0; pi < 3 && pi < pairs.pairs.size(); ++pi) {
      const auto& pair = pairs.pairs[pi];
      std::printf("--- pair %zu\n  R: %s\n  S: %s\n", pi,
                  pair.r.snippet.ToString().c_str(), pair.s.snippet.ToString().c_str());
      for (const auto* cfg : {&c2, &c4}) {
        FeatureRegistry tr, pr;
        std::vector<CoupledOccurrence> occs;
        ExtractPairOccurrences(pair.r.snippet, pair.s.snippet, db, *cfg, &tr, &pr, &occs);
        std::map<std::pair<std::string, std::string>, double> agg;
        for (const auto& o : occs) {
          agg[{std::string(tr.NameOf(o.t)),
               o.p == kInvalidFeatureId ? std::string() : std::string(pr.NameOf(o.p))}] +=
              o.sign;
        }
        std::printf("  [%s] %zu occurrences, net features:\n", cfg->name.c_str(), occs.size());
        for (const auto& [k, v] : agg) {
          if (v != 0.0) std::printf("    %+.0f  %s | %s\n", v, k.first.c_str(), k.second.c_str());
        }
      }
    }
  }

  // --- Per-subset accuracy for M1 / M2 / M4 / M6, plus an oracle variant
  // of M2 whose position factor is frozen at the ground-truth examination
  // curve (upper bound for what learning P could buy).
  ClassifierConfig m2_oracle = ClassifierConfig::M2();
  m2_oracle.name = "M2*";  // oracle positions
  m2_oracle.position_lr.epochs = 0;
  m2_oracle.coupled_iterations = 1;
  ClassifierConfig m2_it1 = ClassifierConfig::M2();
  m2_it1.name = "M2i1";
  m2_it1.coupled_iterations = 1;
  ClassifierConfig m2_l2 = ClassifierConfig::M2();
  m2_l2.name = "M2l2";
  m2_l2.position_lr.l2 = 0.2;
  ClassifierConfig m2_long = ClassifierConfig::M2();
  m2_long.name = "M2lg";
  m2_long.position_lr.epochs = 25;
  m2_long.coupled_iterations = 6;
  ClassifierConfig m4_decomposed = ClassifierConfig::M4();
  m4_decomposed.name = "M4d";  // matched rewrites decomposed into terms
  m4_decomposed.drop_matched_rewrites = true;
  ClassifierConfig m4_posonly = ClassifierConfig::M4();
  m4_posonly.name = "M4p";  // locality-only matching
  m4_posonly.matching = MatchingStrategy::kPositionOnly;
  ClassifierConfig m1_unigram = ClassifierConfig::M1();
  m1_unigram.name = "M1u";  // unigrams only: zero adjacency information
  m1_unigram.max_ngram = 1;
  ClassifierConfig m2_unigram = ClassifierConfig::M2();
  m2_unigram.name = "M2u";
  m2_unigram.max_ngram = 1;
  ClassifierConfig m2_diff = ClassifierConfig::M2();
  m2_diff.name = "M2df";  // term features restricted to diff regions
  m2_diff.diff_terms_only = true;
  std::vector<ClassifierConfig> configs = {ClassifierConfig::M1(), m1_unigram,
                                           ClassifierConfig::M2(), m2_diff, m2_unigram,
                                           m2_oracle, ClassifierConfig::M4(), m4_decomposed,
                                           m4_posonly, ClassifierConfig::M6()};
  for (const ClassifierConfig& config : configs) {
    CoupledDataset dataset = BuildClassifierDataset(pairs, db, config, options.pipeline.seed);
    if (config.name == "M2*") {
      const ExaminationCurve curve = ExaminationCurve::TopPlacement();
      for (int line = 0; line <= 2; ++line) {
        for (int b = 0; b <= 7; ++b) {
          const FeatureId id = dataset.p_registry.Find(TermPositionKey(PositionKey{line, b}));
          if (id != kInvalidFeatureId) {
            dataset.p_registry.SetInitialWeight(id, 4.0 * curve.Probability(line, b));
          }
        }
      }
    }
    // Split 80/20 by adgroup so same-adgroup pairs never straddle the
    // boundary (mirrors the pipeline's grouped folds).
    std::vector<size_t> train, test;
    for (size_t i = 0; i < dataset.examples.size(); ++i) {
      (pairs.pairs[i].adgroup_id % 5 == 4 ? test : train).push_back(i);
    }
    auto model = TrainSnippetClassifier(dataset, config, train);
    if (!model.ok()) return 1;
    int correct_all = 0, n_all = 0, correct_move = 0, n_move = 0;
    int correct_conflict = 0, n_conflict = 0;
    for (size_t idx : test) {
      const auto& pair = pairs.pairs[idx];
      const PairDiff diff = MatchRewrites(pair.r.snippet, pair.s.snippet, &db);
      bool any_text_change = !diff.r_only.empty() || !diff.s_only.empty();
      int text_rewrites = 0;
      for (const auto& rw : diff.rewrites) {
        if (rw.r_span.text != rw.s_span.text) {
          any_text_change = true;
          ++text_rewrites;
        }
      }
      const auto& ex = dataset.examples[idx];
      const bool predicted = model->Score(ex) >= 0.0;
      const bool actual = ex.label > 0.5;
      ++n_all;
      correct_all += predicted == actual;
      if (!any_text_change) {
        ++n_move;
        correct_move += predicted == actual;
      }
      if (text_rewrites >= 2) {
        ++n_conflict;
        correct_conflict += predicted == actual;
      }
    }
    std::printf("%s: acc=%.3f  move-only acc=%.3f (n=%d)  multi-rewrite acc=%.3f (n=%d)\n",
                config.name.c_str(), double(correct_all) / n_all,
                n_move ? double(correct_move) / n_move : 0.0, n_move,
                n_conflict ? double(correct_conflict) / n_conflict : 0.0, n_conflict);
    if (config.use_position) {
      std::printf("   P weights (term positions line:bucket=w): ");
      for (int line = 0; line <= 2; ++line) {
        for (int b = 0; b <= 7; ++b) {
          const FeatureId id = dataset.p_registry.Find(TermPositionKey(PositionKey{line, b}));
          if (id != kInvalidFeatureId) {
            std::printf("%d:%d=%.2f ", line, b, model->p_weights[id]);
          }
        }
      }
      std::printf("\n");
    }
  }
  return 0;
}
