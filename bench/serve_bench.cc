// Copyright 2026 The Microbrowse Authors
//
// Serving-path load generator: drives ScoringService::HandleLine in-process
// (no sockets, so the numbers isolate scoring + caching + contention from
// kernel networking) across a concurrency × cache-regime sweep.
//
//   cold — every request is a never-before-seen pair: full tokenization,
//          n-gram extraction and rewrite matching on each call.
//   warm — a small working set requested repeatedly: after the first pass
//          every request is an LRU hit on the memoised margin.
//
// The headline check mirrors the serving design goal: warm-cache score_pair
// p50 should be at least 5x lower than cold-cache at every concurrency.
//
// The bench also measures *cold start* — LoadBundle to first successful
// score — for the same artifacts staged as TSV and as mbpack containers,
// and emits everything to BENCH_serve.json (MB_BENCH_OUT overrides the
// path). The mbpack-over-TSV cold-start speedup is reported always and
// enforced (>= 10x) only when MB_REQUIRE_COLD_SPEEDUP=1, mirroring the
// hardware-conditional gate of train_bench.
//
// The sustained_qps stage measures the request hot path end to end over
// real sockets: MB_QPS_CONNS pipelined connections (window MB_QPS_WINDOW)
// ping the server for MB_QPS_SECONDS, against two configurations of the
// epoll core — the level-triggered + FIFO-queue baseline and the
// edge-triggered + work-stealing default (DESIGN.md §17). QPS, client-side
// p50/p99 and whole-process allocations-per-request (a counting global
// operator new, enabled only during the measured window) are reported for
// both. When MB_REQUIRE_TPUT=1 *and* the machine has >= 8 hardware
// threads, the stage enforces tuned QPS >= 2x baseline with p99 no worse
// (10% tolerance); below 8 cores the numbers are informational — a 1-core
// container cannot saturate the contention the stage exists to measure.
//
// The final stage is the c10k soak: a real epoll-core Server on an
// ephemeral port, MB_C10K_CONNS (default 10000) concurrent TCP
// connections held open by one in-process epoll client loop, and
// MB_C10K_ROUNDS (default 3) full ping sweeps across every connection.
// Per-request latency is measured from the client side; the p99 is
// reported always and enforced (<= MB_C10K_P99_MS, default 2000) only
// when MB_REQUIRE_C10K=1 — loaded CI machines should not fail the build
// on scheduler noise unless the job opted in. RLIMIT_NOFILE is raised to
// its hard cap first; if the cap cannot fit 2 fds per connection the
// stage scales the connection count down and says so — and when even a
// minimal swarm does not fit, the stage is skipped outright with the
// reason logged and recorded in the JSON report rather than producing
// numbers that measure the fd limit instead of the server.
// MB_C10K_EPOLL_MODE ("edge" default, "level") selects the reactor
// triggering mode so the CI matrix can soak both.
//
// Environment: MB_ADGROUPS (default 200), MB_REQUESTS per worker (default
// 500), MB_SEED, MB_COLDSTART_REPS (default 5), MB_QPS_CONNS (default 8,
// 0 skips the stage), MB_QPS_WINDOW (default 16), MB_QPS_SECONDS (default
// 2), MB_QPS_THREADS server workers (default 4), MB_REQUIRE_TPUT,
// MB_C10K_CONNS (0 skips the stage), MB_C10K_ROUNDS, MB_C10K_P99_MS,
// MB_C10K_EPOLL_MODE, MB_REQUIRE_C10K, MB_BENCH_OUT,
// MB_REQUIRE_COLD_SPEEDUP.

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <new>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/histogram.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "corpus/generator.h"
#include "corpus/pair_extraction.h"
#include "eval/experiments.h"
#include "io/atomic_file.h"
#include "io/pack_artifacts.h"
#include "io/serialization.h"
#include "microbrowse/classifier.h"
#include "microbrowse/optimizer.h"
#include "microbrowse/stats_db.h"
#include "serve/bundle.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/service.h"

using namespace microbrowse;

// --------------------------------------------------- counting allocator
// Whole-process allocation counter behind the sustained_qps stage's
// allocations-per-request metric. Counting is off except during the
// measured window, so setup/teardown churn never pollutes the number.
// Only the plain (non-aligned) forms are replaced; the aligned operator
// new/delete pairs keep their defaults, which is a valid mix.

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<int64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* ptr = std::malloc(size == 0 ? 1 : size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

namespace {

/// "token token|token token|..." — the snippet wire format of the protocol.
std::string SnippetField(const Snippet& snippet) {
  std::string field;
  for (int i = 0; i < snippet.num_lines(); ++i) {
    if (i > 0) field += '|';
    field += Join(snippet.line(i), " ");
  }
  return field;
}

/// One measured load run: `concurrency` workers each issuing
/// `requests_per_worker` requests round-robin from `requests`.
struct RunResult {
  double seconds = 0.0;
  HistogramSnapshot latency;
};

RunResult RunLoad(serve::ScoringService& service, const std::vector<std::string>& requests,
                  int concurrency, int requests_per_worker) {
  Histogram latency;
  std::atomic<int> failures{0};
  WallTimer wall;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(concurrency));
  for (int w = 0; w < concurrency; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < requests_per_worker; ++i) {
        const std::string& line =
            requests[(static_cast<size_t>(w) * requests_per_worker + i) % requests.size()];
        WallTimer timer;
        const std::string response = service.HandleLine(line);
        latency.Record(timer.ElapsedSeconds());
        if (response.find("\"ok\":true") == std::string::npos) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  RunResult result;
  result.seconds = wall.ElapsedSeconds();
  result.latency = latency.Snapshot();
  if (failures.load() > 0) {
    std::fprintf(stderr, "serve_bench: %d requests failed\n", failures.load());
    std::exit(1);
  }
  return result;
}

std::string ScorePairLine(const std::string& a, const std::string& b) {
  serve::JsonWriter request;
  request.String("type", "score_pair").String("a", a).String("b", b);
  return request.Finish();
}

/// Median milliseconds from LoadBundle(paths) to the first successful
/// score, over `reps` fresh loads. This is the operator-visible restart /
/// hot-reload cost of a bundle in the given artifact format.
double MeasureColdStartMs(const serve::BundlePaths& paths, const Snippet& a, const Snippet& b,
                          int reps) {
  std::vector<double> ms;
  ms.reserve(static_cast<size_t>(reps));
  for (int rep = 0; rep < reps; ++rep) {
    WallTimer timer;
    auto bundle = serve::LoadBundle(paths, /*generation=*/1);
    if (!bundle.ok()) {
      std::fprintf(stderr, "serve_bench: cold-start load failed: %s\n",
                   bundle.status().ToString().c_str());
      std::exit(1);
    }
    // First score through the bundle's own predictor — the same path a real
    // request takes (service.cc HandleScore), so the number reflects serving
    // cold start, not per-call tooling overhead.
    const serve::ModelBundle& loaded = **bundle;
    const double margin = loaded.predictor->Score(a) - loaded.predictor->Score(b);
    if (!std::isfinite(margin)) {
      std::fprintf(stderr, "serve_bench: cold-start score not finite\n");
      std::exit(1);
    }
    ms.push_back(timer.ElapsedSeconds() * 1e3);
  }
  std::sort(ms.begin(), ms.end());
  return ms[ms.size() / 2];
}

// -------------------------------------------------------- sustained_qps stage

/// One sustained-throughput run against a live server configuration.
struct QpsStats {
  bool ran = false;
  double seconds = 0.0;     ///< Measured window length.
  int64_t responses = 0;    ///< Responses inside the measured window.
  double qps = 0.0;
  HistogramSnapshot latency;  ///< Client-side round trip, measured window.
  double allocs_per_request = 0.0;  ///< Whole-process new-calls per response.
};

/// Drives `conns` pipelined connections (window `window` outstanding pings
/// each) against `port`. After a 300 ms warmup the allocation counter and
/// latency histogram switch on for `duration_seconds`; in-order response
/// delivery makes the oldest-outstanding timestamp the right latency
/// anchor for every response.
QpsStats RunSustainedQps(uint16_t port, int conns, int window, double duration_seconds) {
  QpsStats stats;
  stats.ran = true;
  Histogram latency;
  std::atomic<int64_t> responses{0};
  std::atomic<int> phase{0};  // 0 warmup, 1 measuring, 2 shutting down.
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(conns));
  for (int w = 0; w < conns; ++w) {
    workers.emplace_back([&, window] {
      auto connected = TcpConnect("127.0.0.1", port);
      if (!connected.ok()) {
        failures.fetch_add(1);
        return;
      }
      Socket socket(std::move(*connected));
      const int one = 1;
      ::setsockopt(socket.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      LineReader reader(socket);
      const std::string ping = "{\"type\":\"ping\"}\n";
      // Fixed ring of send timestamps: responses come back in order, so
      // the oldest slot is always the one completing. No steady-state
      // allocations on the client side either — the metric should see the
      // server's, not the harness's.
      std::vector<std::chrono::steady_clock::time_point> sent(
          static_cast<size_t>(window));
      size_t head = 0, tail = 0, outstanding = 0;
      std::string line;
      line.reserve(256);
      for (int i = 0; i < window; ++i) {
        if (!SendAll(socket, ping).ok()) {
          failures.fetch_add(1);
          return;
        }
        sent[tail] = std::chrono::steady_clock::now();
        tail = (tail + 1) % sent.size();
        ++outstanding;
      }
      while (outstanding > 0) {
        auto got = reader.ReadLine(&line);
        if (!got.ok() || !*got) {
          failures.fetch_add(1);
          return;
        }
        const auto now = std::chrono::steady_clock::now();
        const int current = phase.load(std::memory_order_acquire);
        if (current == 1) {
          latency.Record(
              std::chrono::duration_cast<std::chrono::duration<double>>(now - sent[head])
                  .count());
          responses.fetch_add(1, std::memory_order_relaxed);
        }
        head = (head + 1) % sent.size();
        --outstanding;
        if (current < 2) {
          if (!SendAll(socket, ping).ok()) {
            failures.fetch_add(1);
            return;
          }
          sent[tail] = std::chrono::steady_clock::now();
          tail = (tail + 1) % sent.size();
          ++outstanding;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));  // Warmup.
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_release);
  WallTimer window_timer;
  phase.store(1, std::memory_order_release);
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int64_t>(duration_seconds * 1e3)));
  phase.store(2, std::memory_order_release);
  stats.seconds = window_timer.ElapsedSeconds();
  g_count_allocs.store(false, std::memory_order_release);
  const int64_t allocs = g_alloc_count.load(std::memory_order_relaxed);
  for (std::thread& worker : workers) worker.join();
  stats.responses = responses.load();
  stats.qps = static_cast<double>(stats.responses) / std::max(1e-9, stats.seconds);
  stats.latency = latency.Snapshot();
  stats.allocs_per_request =
      static_cast<double>(allocs) / std::max<int64_t>(1, stats.responses);
  if (failures.load() > 0) {
    std::fprintf(stderr, "serve_bench: sustained_qps had %d connection failures\n",
                 failures.load());
    std::exit(1);
  }
  return stats;
}

/// Stands up an epoll-core server in the given (epoll_mode, scheduler)
/// configuration and runs the sustained load against it.
QpsStats MeasureQpsConfig(serve::BundleRegistry* registry, serve::EpollMode epoll_mode,
                          serve::Scheduler scheduler, int server_threads, int conns,
                          int window, double seconds) {
  serve::ServerOptions options;
  options.port = 0;
  options.io_model = serve::IoModel::kEpoll;
  options.epoll_mode = epoll_mode;
  options.scheduler = scheduler;
  options.num_threads = server_threads;
  options.max_queue = static_cast<size_t>(conns) * static_cast<size_t>(window) + 64;
  serve::ScoringService service(registry);
  serve::Server server(&service, options);
  auto port = server.Start();
  if (!port.ok()) {
    std::fprintf(stderr, "serve_bench: sustained_qps server start failed: %s\n",
                 port.status().ToString().c_str());
    std::exit(1);
  }
  QpsStats stats = RunSustainedQps(*port, conns, window, seconds);
  server.Stop();
  return stats;
}

// ----------------------------------------------------------------- c10k stage

/// Outcome of the 10k-connection soak against a real epoll-core server.
struct C10kStats {
  int requested = 0;    ///< Connections asked for (after the fd-cap clamp).
  int established = 0;  ///< Connections actually standing concurrently.
  int rounds = 0;
  int64_t responses = 0;
  int64_t failures = 0;  ///< Connect failures + responses that never came.
  double connect_seconds = 0.0;
  HistogramSnapshot latency;  ///< Client-side ping round trip, seconds.
  bool ran = false;
};

/// Raises RLIMIT_NOFILE to its hard cap and returns the number of client
/// connections that fit: the client and server live in one process, so
/// each connection costs two fds, plus slack for everything else. When the
/// request is clamped, `reason` describes the limit that forced it.
int ClampConnsToFdLimit(int requested, std::string* reason) {
  rlimit limit{};
  if (getrlimit(RLIMIT_NOFILE, &limit) != 0) {
    *reason = StrFormat("getrlimit(RLIMIT_NOFILE) failed: %s", std::strerror(errno));
    return requested;  // Optimistic: connect failures will surface it.
  }
  if (limit.rlim_cur < limit.rlim_max) {
    limit.rlim_cur = limit.rlim_max;
    (void)setrlimit(RLIMIT_NOFILE, &limit);
    (void)getrlimit(RLIMIT_NOFILE, &limit);
  }
  const rlim_t needed = static_cast<rlim_t>(requested) * 2 + 256;
  if (limit.rlim_cur >= needed) return requested;
  const int fit = static_cast<int>((limit.rlim_cur > 256 ? limit.rlim_cur - 256 : 0) / 2);
  *reason = StrFormat(
      "RLIMIT_NOFILE hard cap %llu cannot be raised past %llu; %d of %d "
      "requested connections fit at 2 fds each",
      static_cast<unsigned long long>(limit.rlim_max),
      static_cast<unsigned long long>(limit.rlim_cur), fit, requested);
  return std::max(0, fit);
}

/// One client-side connection in the swarm.
struct SwarmConn {
  int fd = -1;
  bool established = false;
  std::chrono::steady_clock::time_point sent_at;
  bool awaiting_response = false;
};

/// Drives `target_conns` concurrent connections against `port` from a
/// single epoll loop — the client mirrors the server's own I/O model, so
/// one process can stand up both sides of a 10k-connection soak.
C10kStats RunC10k(uint16_t port, int target_conns, int rounds) {
  C10kStats stats;
  stats.requested = target_conns;
  stats.rounds = rounds;
  stats.ran = true;
  Histogram latency;

  const int epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) {
    std::fprintf(stderr, "serve_bench: epoll_create1: %s\n", std::strerror(errno));
    stats.failures = target_conns;
    return stats;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);

  std::vector<SwarmConn> conns(static_cast<size_t>(target_conns));
  std::unordered_map<int, int> index_by_fd;
  index_by_fd.reserve(static_cast<size_t>(target_conns));
  std::vector<epoll_event> events(4096);

  // --- Connect storm: capped waves of non-blocking connects ---------------
  WallTimer connect_timer;
  int launched = 0;
  int settled = 0;  // Established or failed.
  int in_flight = 0;
  constexpr int kConnectWave = 512;
  const auto connect_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (settled < target_conns &&
         std::chrono::steady_clock::now() < connect_deadline) {
    while (launched < target_conns && in_flight < kConnectWave) {
      const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
      if (fd < 0) {
        stats.failures++;
        settled++;
        launched++;
        continue;
      }
      const int rc =
          ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
      if (rc != 0 && errno != EINPROGRESS) {
        stats.failures++;
        settled++;
        launched++;
        ::close(fd);
        continue;
      }
      conns[static_cast<size_t>(launched)].fd = fd;
      index_by_fd[fd] = launched;
      epoll_event event{};
      event.events = EPOLLOUT;
      event.data.fd = fd;
      ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &event);
      launched++;
      in_flight++;
    }
    const int n = ::epoll_wait(epoll_fd, events.data(),
                               static_cast<int>(events.size()), 1000);
    for (int i = 0; i < n; ++i) {
      const int fd = events[static_cast<size_t>(i)].data.fd;
      SwarmConn& conn = conns[static_cast<size_t>(index_by_fd[fd])];
      if (conn.established) continue;
      int error = 0;
      socklen_t len = sizeof(error);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &len);
      epoll_event event{};
      event.data.fd = fd;
      if (error == 0) {
        conn.established = true;
        stats.established++;
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        event.events = EPOLLIN;
        ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, fd, &event);
      } else {
        ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
        ::close(fd);
        index_by_fd.erase(fd);
        conn.fd = -1;
        stats.failures++;
      }
      settled++;
      in_flight--;
    }
  }
  stats.failures += target_conns - settled;  // Connects that never resolved.
  stats.connect_seconds = connect_timer.ElapsedSeconds();

  // --- Ping sweeps: every standing connection, every round ----------------
  const std::string ping = "{\"type\":\"ping\"}\n";
  for (int round = 0; round < rounds; ++round) {
    int64_t awaiting = 0;
    for (SwarmConn& conn : conns) {
      if (!conn.established) continue;
      // A 17-byte request into an empty non-blocking socket: a short write
      // here means the connection is sick, which the read side will count.
      const ssize_t sent = ::send(conn.fd, ping.data(), ping.size(), MSG_NOSIGNAL);
      if (sent != static_cast<ssize_t>(ping.size())) continue;
      conn.sent_at = std::chrono::steady_clock::now();
      conn.awaiting_response = true;
      awaiting++;
    }
    const auto round_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    char chunk[4096];
    while (awaiting > 0 && std::chrono::steady_clock::now() < round_deadline) {
      const int n = ::epoll_wait(epoll_fd, events.data(),
                                 static_cast<int>(events.size()), 1000);
      for (int i = 0; i < n; ++i) {
        const int fd = events[static_cast<size_t>(i)].data.fd;
        auto it = index_by_fd.find(fd);
        if (it == index_by_fd.end()) continue;
        SwarmConn& conn = conns[static_cast<size_t>(it->second)];
        const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
        if (got <= 0) {
          if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
          // Closed under us mid-round: the missing response is counted when
          // the round settles.
          ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
          ::close(fd);
          index_by_fd.erase(it);
          conn.fd = -1;
          conn.established = false;
          if (conn.awaiting_response) {
            conn.awaiting_response = false;
            awaiting--;
            stats.failures++;
          }
          continue;
        }
        // One ping in flight per connection, so any newline in the chunk is
        // this round's response completing.
        if (conn.awaiting_response &&
            std::memchr(chunk, '\n', static_cast<size_t>(got)) != nullptr) {
          latency.Record(std::chrono::duration_cast<std::chrono::duration<double>>(
                             std::chrono::steady_clock::now() - conn.sent_at)
                             .count());
          conn.awaiting_response = false;
          awaiting--;
          stats.responses++;
        }
      }
    }
    for (SwarmConn& conn : conns) {
      if (conn.awaiting_response) {  // Round timed out on this connection.
        conn.awaiting_response = false;
        stats.failures++;
      }
    }
  }

  for (SwarmConn& conn : conns) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  ::close(epoll_fd);
  stats.latency = latency.Snapshot();
  return stats;
}

/// One row of the concurrency x cache-regime sweep, kept for the JSON dump.
struct SweepRow {
  int threads = 0;
  const char* cache = "";
  double req_per_sec = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double hit_rate = 0.0;
};

void WriteBenchJson(const std::string& path, double tsv_cold_ms, double mbpack_cold_ms,
                    int cold_reps, bool cold_enforced, double worst_warm_speedup,
                    const std::vector<SweepRow>& sweep, const QpsStats& qps_baseline,
                    const QpsStats& qps_tuned, bool qps_enforced, const C10kStats& c10k,
                    const std::string& c10k_skip_reason, const std::string& c10k_epoll_mode,
                    double c10k_p99_bound_ms, bool c10k_enforced) {
  std::ofstream out(path, std::ios::trunc);
  const double cold_speedup = tsv_cold_ms / std::max(1e-9, mbpack_cold_ms);
  out << "{\n  \"bench\": \"serve\",\n";
  out << "  \"cold_start\": {\n"
      << "    \"description\": \"LoadBundle -> first score, median ms\",\n"
      << StrFormat("    \"reps\": %d,\n", cold_reps)
      << StrFormat("    \"tsv_cold_start_ms\": %.3f,\n", tsv_cold_ms)
      << StrFormat("    \"mbpack_cold_start_ms\": %.3f,\n", mbpack_cold_ms)
      << StrFormat("    \"measured_speedup\": %.2f,\n", cold_speedup)
      << "    \"min_speedup\": 10.0,\n"
      << "    \"enforced\": " << (cold_enforced ? "true" : "false") << "\n  },\n";
  out << "  \"warm_cache\": {\n"
      << "    \"description\": \"warm-over-cold score_pair p50 speedup, worst concurrency\",\n"
      << StrFormat("    \"measured_speedup\": %.2f,\n", worst_warm_speedup)
      << "    \"min_speedup\": 5.0,\n    \"enforced\": true\n  },\n";
  out << "  \"sweep\": [\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepRow& row = sweep[i];
    out << "    {"
        << StrFormat("\"threads\": %d, \"cache\": \"%s\", ", row.threads, row.cache)
        << StrFormat("\"req_per_sec\": %.1f, ", row.req_per_sec)
        << StrFormat("\"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f, ", row.p50_us,
                     row.p95_us, row.p99_us)
        << StrFormat("\"hit_rate\": %.2f}", row.hit_rate) << (i + 1 < sweep.size() ? "," : "")
        << "\n";
  }
  out << "  ],\n";
  const auto qps_block = [&out](const char* key, const QpsStats& stats) {
    out << "    \"" << key << "\": {"
        << StrFormat("\"qps\": %.1f, ", stats.qps)
        << StrFormat("\"responses\": %lld, ", static_cast<long long>(stats.responses))
        << StrFormat("\"p50_ms\": %.3f, \"p99_ms\": %.3f, ", stats.latency.p50 * 1e3,
                     stats.latency.p99 * 1e3)
        << StrFormat("\"allocs_per_request\": %.2f}", stats.allocs_per_request);
  };
  out << "  \"sustained_qps\": {\n"
      << "    \"description\": \"pipelined ping throughput over real sockets: "
         "level+fifo baseline vs edge+steal default\",\n"
      << "    \"ran\": " << (qps_baseline.ran && qps_tuned.ran ? "true" : "false")
      << ",\n";
  if (qps_baseline.ran && qps_tuned.ran) {
    qps_block("baseline_level_fifo", qps_baseline);
    out << ",\n";
    qps_block("tuned_edge_steal", qps_tuned);
    out << ",\n"
        << StrFormat("    \"measured_speedup\": %.2f,\n",
                     qps_tuned.qps / std::max(1e-9, qps_baseline.qps))
        << "    \"min_speedup\": 2.0,\n";
  }
  out << "    \"enforced\": " << (qps_enforced ? "true" : "false") << "\n  },\n";
  out << "  \"c10k\": {\n"
      << "    \"description\": \"concurrent connections against the epoll core, "
         "client-side ping round trip\",\n"
      << "    \"ran\": " << (c10k.ran ? "true" : "false") << ",\n"
      << "    \"skip_reason\": \"" << c10k_skip_reason << "\",\n"
      << "    \"epoll_mode\": \"" << c10k_epoll_mode << "\",\n"
      << StrFormat("    \"connections_requested\": %d,\n", c10k.requested)
      << StrFormat("    \"connections_established\": %d,\n", c10k.established)
      << StrFormat("    \"rounds\": %d,\n", c10k.rounds)
      << StrFormat("    \"responses\": %lld,\n",
                   static_cast<long long>(c10k.responses))
      << StrFormat("    \"failures\": %lld,\n", static_cast<long long>(c10k.failures))
      << StrFormat("    \"connect_seconds\": %.3f,\n", c10k.connect_seconds)
      << StrFormat("    \"p50_ms\": %.2f,\n", c10k.latency.p50 * 1e3)
      << StrFormat("    \"p95_ms\": %.2f,\n", c10k.latency.p95 * 1e3)
      << StrFormat("    \"p99_ms\": %.2f,\n", c10k.latency.p99 * 1e3)
      << StrFormat("    \"p99_bound_ms\": %.1f,\n", c10k_p99_bound_ms)
      << "    \"enforced\": " << (c10k_enforced ? "true" : "false") << "\n  }\n}\n";
}

}  // namespace

int main() {
  const int adgroups = static_cast<int>(EnvInt("MB_ADGROUPS", 200));
  const int requests_per_worker = static_cast<int>(EnvInt("MB_REQUESTS", 500));
  const uint64_t seed = static_cast<uint64_t>(EnvInt("MB_SEED", 2026));

  // Train a bundle and stage it on disk the way mbserved consumes it.
  AdCorpusOptions corpus_options;
  corpus_options.num_adgroups = adgroups;
  corpus_options.seed = seed;
  auto generated = GenerateAdCorpus(corpus_options);
  if (!generated.ok()) {
    std::fprintf(stderr, "corpus failed: %s\n", generated.status().ToString().c_str());
    return 1;
  }
  const PairCorpus pairs = ExtractSignificantPairs(generated->corpus, {});
  const FeatureStatsDb db = BuildFeatureStats(pairs, {});
  const ClassifierConfig config = ClassifierConfig::M6();
  const CoupledDataset dataset = BuildClassifierDataset(pairs, db, config, seed);
  auto model = TrainSnippetClassifier(dataset, config);
  if (!model.ok()) {
    std::fprintf(stderr, "training failed: %s\n", model.status().ToString().c_str());
    return 1;
  }
  const std::string dir = "serve_bench_artifacts";
  if (const Status status = CreateDirectories(dir); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  serve::BundlePaths paths;
  paths.model_path = dir + "/model.txt";
  paths.stats_path = dir + "/stats.tsv";
  if (const Status status =
          SaveClassifier(*model, dataset.t_registry, dataset.p_registry, paths.model_path);
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  if (const Status status = SaveFeatureStats(db, paths.stats_path); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  // The same bundle staged as mbpack containers, for the cold-start A/B.
  serve::BundlePaths pack_paths = paths;
  pack_paths.model_path = dir + "/model.mbp";
  pack_paths.stats_path = dir + "/stats.mbp";
  // Convert the packs *from the TSV artifacts* (the mbctl pack flow), so the
  // two cold-start bundles are bitwise-identical models, not near-identical.
  auto tsv_model = LoadClassifier(paths.model_path);
  auto tsv_db = LoadFeatureStats(paths.stats_path);
  if (!tsv_model.ok() || !tsv_db.ok()) {
    std::fprintf(stderr, "reloading TSV artifacts failed\n");
    return 1;
  }
  if (const Status status = SaveClassifierPack(tsv_model->model, tsv_model->t_registry,
                                               tsv_model->p_registry, pack_paths.model_path);
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  if (const Status status = SaveStatsPack(*tsv_db, pack_paths.stats_path); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  serve::BundleRegistry registry;
  if (const Status status = registry.LoadInitial(paths); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  serve::ScoringService service(&registry);

  // Snippet pool from the corpus creatives.
  std::vector<std::string> fields;
  for (const auto& adgroup : generated->corpus.adgroups) {
    for (const auto& creative : adgroup.creatives) {
      fields.push_back(SnippetField(creative.snippet));
    }
  }
  if (fields.size() < 2) {
    std::fprintf(stderr, "corpus too small\n");
    return 1;
  }
  std::printf("serve_bench: %zu creatives, %d requests/worker, M6 bundle (%zu T features)\n\n",
              fields.size(), requests_per_worker, dataset.t_registry.size());

  TablePrinter table("SERVING: in-process score_pair latency, cold vs warm cache");
  table.SetHeader({"Threads", "Cache", "Req/s", "p50 us", "p95 us", "p99 us", "Hit rate"});

  // Globally unique nonce so "cold" pairs never collide across runs.
  uint64_t nonce = 0;
  double worst_speedup = -1.0;
  std::vector<SweepRow> sweep;
  for (int concurrency : {1, 4, 8}) {
    const int total = concurrency * requests_per_worker;

    // Cold: every request is a unique pair (a nonce token defeats the
    // content-hash cache without changing the snippet's shape much).
    std::vector<std::string> cold;
    cold.reserve(static_cast<size_t>(total));
    for (int i = 0; i < total; ++i) {
      const std::string& a = fields[static_cast<size_t>(i) % fields.size()];
      const std::string& b = fields[static_cast<size_t>(i + 1) % fields.size()];
      cold.push_back(ScorePairLine(a + " nonce" + std::to_string(nonce++), b));
    }
    const RunResult cold_run = RunLoad(service, cold, concurrency, requests_per_worker);

    // Warm: a 64-pair working set, prewarmed, then hammered.
    std::vector<std::string> warm;
    for (int i = 0; i < 64; ++i) {
      warm.push_back(ScorePairLine(fields[static_cast<size_t>(i) % fields.size()],
                                   fields[static_cast<size_t>(i + 2) % fields.size()]));
    }
    for (const std::string& line : warm) service.HandleLine(line);
    const auto before = service.pair_cache_stats();
    const RunResult warm_run = RunLoad(service, warm, concurrency, requests_per_worker);
    const auto after = service.pair_cache_stats();
    const double hits = static_cast<double>(after.hits - before.hits);
    const double hit_rate = hits / std::max(1, total);

    table.AddRow({StrFormat("%d", concurrency), "cold",
                  StrFormat("%.0f", total / cold_run.seconds),
                  StrFormat("%.1f", cold_run.latency.p50 * 1e6),
                  StrFormat("%.1f", cold_run.latency.p95 * 1e6),
                  StrFormat("%.1f", cold_run.latency.p99 * 1e6), "0.00"});
    table.AddRow({StrFormat("%d", concurrency), "warm",
                  StrFormat("%.0f", total / warm_run.seconds),
                  StrFormat("%.1f", warm_run.latency.p50 * 1e6),
                  StrFormat("%.1f", warm_run.latency.p95 * 1e6),
                  StrFormat("%.1f", warm_run.latency.p99 * 1e6),
                  StrFormat("%.2f", hit_rate)});
    sweep.push_back(SweepRow{concurrency, "cold", total / cold_run.seconds,
                             cold_run.latency.p50 * 1e6, cold_run.latency.p95 * 1e6,
                             cold_run.latency.p99 * 1e6, 0.0});
    sweep.push_back(SweepRow{concurrency, "warm", total / warm_run.seconds,
                             warm_run.latency.p50 * 1e6, warm_run.latency.p95 * 1e6,
                             warm_run.latency.p99 * 1e6, hit_rate});

    const double speedup = cold_run.latency.p50 / std::max(1e-9, warm_run.latency.p50);
    if (worst_speedup < 0 || speedup < worst_speedup) worst_speedup = speedup;
  }
  table.Print(std::cout);
  std::printf("\nwarm-over-cold p50 speedup (worst across concurrencies): %.1fx %s\n",
              worst_speedup, worst_speedup >= 5.0 ? "(target: >=5x, met)"
                                                  : "(target: >=5x, NOT met)");

  // Cold start: LoadBundle -> first score, TSV vs mbpack, fresh load each
  // rep. The pack path should be bounded by mmap + one checksum pass, not
  // by per-row parsing.
  const int cold_reps = static_cast<int>(std::max<int64_t>(1, EnvInt("MB_COLDSTART_REPS", 5)));
  const Snippet cold_a = generated->corpus.adgroups[0].creatives[0].snippet;
  const Snippet cold_b = generated->corpus.adgroups.back().creatives.back().snippet;
  const double tsv_cold_ms = MeasureColdStartMs(paths, cold_a, cold_b, cold_reps);
  const double mbpack_cold_ms = MeasureColdStartMs(pack_paths, cold_a, cold_b, cold_reps);
  const double cold_speedup = tsv_cold_ms / std::max(1e-9, mbpack_cold_ms);
  const bool cold_enforced = EnvInt("MB_REQUIRE_COLD_SPEEDUP", 0) > 0;
  std::printf("\ncold start (LoadBundle -> first score, median of %d): tsv %.1f ms, "
              "mbpack %.1f ms, speedup %.1fx %s\n",
              cold_reps, tsv_cold_ms, mbpack_cold_ms, cold_speedup,
              cold_enforced ? (cold_speedup >= 10.0 ? "(target: >=10x, met)"
                                                    : "(target: >=10x, NOT met)")
                            : "(target: >=10x, informational)");

  // sustained_qps: the tentpole hot-path A/B — the level-triggered FIFO
  // baseline against the edge-triggered work-stealing default, identical
  // load, real sockets.
  const int qps_conns = static_cast<int>(EnvInt("MB_QPS_CONNS", 8));
  const int qps_window = static_cast<int>(std::max<int64_t>(1, EnvInt("MB_QPS_WINDOW", 16)));
  const double qps_seconds =
      static_cast<double>(std::max<int64_t>(1, EnvInt("MB_QPS_SECONDS", 2)));
  const int qps_threads = static_cast<int>(std::max<int64_t>(1, EnvInt("MB_QPS_THREADS", 4)));
  const unsigned hw_threads = std::thread::hardware_concurrency();
  const bool qps_enforced = EnvInt("MB_REQUIRE_TPUT", 0) > 0 && hw_threads >= 8;
  QpsStats qps_baseline;
  QpsStats qps_tuned;
  bool qps_ok = true;
  if (qps_conns > 0) {
    std::printf("\nsustained_qps: %d pipelined conns x window %d for %.0fs per config "
                "(%d server workers)...\n",
                qps_conns, qps_window, qps_seconds, qps_threads);
    qps_baseline =
        MeasureQpsConfig(&registry, serve::EpollMode::kLevel, serve::Scheduler::kFifo,
                         qps_threads, qps_conns, qps_window, qps_seconds);
    qps_tuned =
        MeasureQpsConfig(&registry, serve::EpollMode::kEdge, serve::Scheduler::kWorkStealing,
                         qps_threads, qps_conns, qps_window, qps_seconds);
    const double qps_speedup = qps_tuned.qps / std::max(1e-9, qps_baseline.qps);
    std::printf(
        "sustained_qps: level+fifo  %.0f qps  p50 %.3f ms  p99 %.3f ms  "
        "%.2f allocs/req\n"
        "sustained_qps: edge+steal  %.0f qps  p50 %.3f ms  p99 %.3f ms  "
        "%.2f allocs/req\n"
        "sustained_qps: speedup %.2fx %s\n",
        qps_baseline.qps, qps_baseline.latency.p50 * 1e3, qps_baseline.latency.p99 * 1e3,
        qps_baseline.allocs_per_request, qps_tuned.qps, qps_tuned.latency.p50 * 1e3,
        qps_tuned.latency.p99 * 1e3, qps_tuned.allocs_per_request, qps_speedup,
        qps_enforced
            ? "(target: >=2x with p99 no worse, enforced)"
            : (hw_threads < 8 ? "(informational: <8 hardware threads, gate inactive)"
                              : "(informational; MB_REQUIRE_TPUT=1 enforces)"));
    if (qps_enforced) {
      if (qps_speedup < 2.0) {
        std::fprintf(stderr,
                     "serve_bench: sustained_qps speedup %.2fx below the 2x floor\n",
                     qps_speedup);
        qps_ok = false;
      }
      if (qps_tuned.latency.p99 > qps_baseline.latency.p99 * 1.10) {
        std::fprintf(stderr,
                     "serve_bench: sustained_qps tuned p99 %.3f ms worse than "
                     "baseline %.3f ms\n",
                     qps_tuned.latency.p99 * 1e3, qps_baseline.latency.p99 * 1e3);
        qps_ok = false;
      }
    }
  }

  // c10k: a real epoll-core server and 10k concurrent socket clients in
  // this one process. Pings keep the payload trivial, so the number is the
  // transport's — event-loop scheduling, queue admission and outbox
  // flushing at connection counts where thread-per-connection would need
  // 10k stacks.
  const int c10k_requested = static_cast<int>(EnvInt("MB_C10K_CONNS", 10'000));
  const int c10k_rounds = static_cast<int>(std::max<int64_t>(1, EnvInt("MB_C10K_ROUNDS", 3)));
  const double c10k_p99_bound_ms =
      static_cast<double>(EnvInt("MB_C10K_P99_MS", 2000));
  const bool c10k_enforced = EnvInt("MB_REQUIRE_C10K", 0) > 0;
  const char* c10k_mode_env = std::getenv("MB_C10K_EPOLL_MODE");
  const std::string c10k_epoll_mode =
      c10k_mode_env != nullptr && std::string(c10k_mode_env) == "level" ? "level" : "edge";
  C10kStats c10k;
  std::string c10k_skip_reason;
  bool c10k_ok = true;
  // The stage needs a minimally meaningful swarm: measuring 50 connections
  // and calling it c10k would be worse than not running.
  const int c10k_floor = std::min(c10k_requested, 256);
  if (c10k_requested > 0) {
    std::string clamp_reason;
    const int c10k_conns = ClampConnsToFdLimit(c10k_requested, &clamp_reason);
    if (c10k_conns < c10k_floor) {
      // Skip, don't fail: the fd limit is an environment property, and a
      // clamped-to-nothing run would measure the limit, not the server.
      c10k_skip_reason = clamp_reason;
      std::printf("\nc10k: SKIPPED — %s\n", c10k_skip_reason.c_str());
      if (c10k_enforced) {
        std::fprintf(stderr,
                     "serve_bench: MB_REQUIRE_C10K=1 but the stage was skipped (%s)\n",
                     c10k_skip_reason.c_str());
        c10k_ok = false;
      }
    } else {
    if (!clamp_reason.empty()) {
      std::fprintf(stderr, "serve_bench: %s; scaling the c10k stage down\n",
                   clamp_reason.c_str());
    }
    serve::ServerOptions c10k_options;
    c10k_options.port = 0;
    c10k_options.io_model = serve::IoModel::kEpoll;
    c10k_options.epoll_mode = c10k_epoll_mode == "level" ? serve::EpollMode::kLevel
                                                         : serve::EpollMode::kEdge;
    c10k_options.num_threads = 4;
    // Admission must fit a full sweep: every connection's ping can be
    // queued at once.
    c10k_options.max_queue = static_cast<size_t>(c10k_conns) + 1024;
    c10k_options.idle_timeout_ms = 120'000;
    c10k_options.listen_backlog = 4096;
    serve::ScoringService c10k_service(&registry);
    serve::Server c10k_server(&c10k_service, c10k_options);
    auto c10k_port = c10k_server.Start();
    if (!c10k_port.ok()) {
      std::fprintf(stderr, "serve_bench: c10k server start failed: %s\n",
                   c10k_port.status().ToString().c_str());
      return 1;
    }
    std::printf("\nc10k: %d connections x %d ping rounds against the epoll core "
                "(%s-triggered)...\n",
                c10k_conns, c10k_rounds, c10k_epoll_mode.c_str());
    c10k = RunC10k(*c10k_port, c10k_conns, c10k_rounds);
    c10k_server.Stop();
    std::printf(
        "c10k: established %d/%d in %.1fs, %lld responses, %lld failures, "
        "ping p50 %.2f ms  p95 %.2f ms  p99 %.2f ms %s\n",
        c10k.established, c10k.requested, c10k.connect_seconds,
        static_cast<long long>(c10k.responses), static_cast<long long>(c10k.failures),
        c10k.latency.p50 * 1e3, c10k.latency.p95 * 1e3, c10k.latency.p99 * 1e3,
        c10k_enforced ? StrFormat("(bound: p99 <= %.0f ms, enforced)", c10k_p99_bound_ms).c_str()
                      : "(informational; MB_REQUIRE_C10K=1 enforces)");
    if (c10k_enforced) {
      if (c10k.established < c10k.requested) {
        std::fprintf(stderr, "serve_bench: c10k established %d < requested %d\n",
                     c10k.established, c10k.requested);
        c10k_ok = false;
      }
      if (c10k.failures != 0) {
        std::fprintf(stderr, "serve_bench: c10k had %lld failures\n",
                     static_cast<long long>(c10k.failures));
        c10k_ok = false;
      }
      if (c10k.latency.p99 * 1e3 > c10k_p99_bound_ms) {
        std::fprintf(stderr, "serve_bench: c10k p99 %.2f ms above the %.0f ms bound\n",
                     c10k.latency.p99 * 1e3, c10k_p99_bound_ms);
        c10k_ok = false;
      }
    }
    }  // else (stage not skipped)
  }

  const std::string bench_out = [] {
    const char* env = std::getenv("MB_BENCH_OUT");
    return env != nullptr && *env != '\0' ? std::string(env) : std::string("BENCH_serve.json");
  }();
  WriteBenchJson(bench_out, tsv_cold_ms, mbpack_cold_ms, cold_reps, cold_enforced,
                 worst_speedup, sweep, qps_baseline, qps_tuned, qps_enforced, c10k,
                 c10k_skip_reason, c10k_epoll_mode, c10k_p99_bound_ms, c10k_enforced);
  std::printf("wrote %s\n", bench_out.c_str());

  if (cold_enforced && cold_speedup < 10.0) return 1;
  if (!qps_ok) return 1;
  if (!c10k_ok) return 1;
  return worst_speedup >= 5.0 ? 0 : 1;
}
