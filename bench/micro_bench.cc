// Copyright 2026 The Microbrowse Authors
//
// Component micro-benchmarks (google-benchmark): tokenization, n-gram
// extraction, token diff, rewrite matching, statistics building, feature
// extraction, logistic-regression epochs and corpus generation.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "corpus/generator.h"
#include "corpus/pair_extraction.h"
#include "microbrowse/classifier.h"
#include "microbrowse/rewrite.h"
#include "microbrowse/stats_db.h"
#include "ml/logistic_regression.h"
#include "text/diff.h"
#include "text/ngram.h"
#include "text/tokenizer.h"

namespace microbrowse {
namespace {

const char* const kSampleLines[3] = {
    "XYZ Airlines - Official Site",
    "Find cheap flights to New York today",
    "No reservation costs. Great rates and 20% off!",
};

void BM_Tokenize(benchmark::State& state) {
  Tokenizer tokenizer;
  size_t tokens = 0;
  for (auto _ : state) {
    for (const char* line : kSampleLines) {
      tokens += tokenizer.Tokenize(line).size();
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(tokens));
}
BENCHMARK(BM_Tokenize);

void BM_ExtractNGrams(benchmark::State& state) {
  const Snippet snippet = Snippet::FromLines(
      {kSampleLines[0], kSampleLines[1], kSampleLines[2]});
  size_t spans = 0;
  for (auto _ : state) {
    spans += ExtractNGrams(snippet, static_cast<int>(state.range(0))).size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(spans));
}
BENCHMARK(BM_ExtractNGrams)->Arg(1)->Arg(2)->Arg(3);

void BM_TokenDiff(benchmark::State& state) {
  Tokenizer tokenizer;
  const auto a = tokenizer.Tokenize("find cheap flights to new york today online");
  const auto b = tokenizer.Tokenize("get discounts on flights to new york now");
  for (auto _ : state) {
    benchmark::DoNotOptimize(TokenDiff(a, b));
  }
}
BENCHMARK(BM_TokenDiff);

/// A realistic pair corpus for the matching / stats / extraction benches.
PairCorpus BenchPairs(int adgroups) {
  AdCorpusOptions options;
  options.num_adgroups = adgroups;
  options.seed = 12;
  auto generated = GenerateAdCorpus(options);
  return ExtractSignificantPairs(generated->corpus, {});
}

void BM_MatchRewrites(benchmark::State& state) {
  const PairCorpus pairs = BenchPairs(200);
  BuildStatsOptions stats_options;
  stats_options.matching_passes = 1;
  const FeatureStatsDb db = BuildFeatureStats(pairs, stats_options);
  size_t i = 0;
  for (auto _ : state) {
    const auto& pair = pairs.pairs[i++ % pairs.pairs.size()];
    benchmark::DoNotOptimize(MatchRewrites(pair.r.snippet, pair.s.snippet, &db));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MatchRewrites);

void BM_BuildFeatureStats(benchmark::State& state) {
  const PairCorpus pairs = BenchPairs(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildFeatureStats(pairs, {}));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(pairs.pairs.size()));
}
BENCHMARK(BM_BuildFeatureStats)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_ExtractPairOccurrences(benchmark::State& state) {
  const PairCorpus pairs = BenchPairs(200);
  const FeatureStatsDb db = BuildFeatureStats(pairs, {});
  const ClassifierConfig config = ClassifierConfig::M6();
  FeatureRegistry t_registry, p_registry;
  std::vector<CoupledOccurrence> occurrences;
  size_t i = 0;
  for (auto _ : state) {
    occurrences.clear();
    const auto& pair = pairs.pairs[i++ % pairs.pairs.size()];
    ExtractPairOccurrences(pair.r.snippet, pair.s.snippet, db, config, &t_registry,
                           &p_registry, &occurrences);
    benchmark::DoNotOptimize(occurrences);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ExtractPairOccurrences);

void BM_LogisticRegressionEpoch(benchmark::State& state) {
  // A synthetic sparse dataset: 20 features per example from a pool of 5k.
  Dataset data;
  data.num_features = 5000;
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    Example example;
    double signal = 0.0;
    for (int f = 0; f < 20; ++f) {
      const FeatureId id = static_cast<FeatureId>(rng.NextIndex(5000));
      const double value = rng.Bernoulli(0.5) ? 1.0 : -1.0;
      example.features.Add(id, value);
      signal += (id % 2 == 0 ? 1.0 : -1.0) * value;
    }
    example.features.Finish();
    example.label = signal > 0 ? 1.0 : 0.0;
    data.examples.push_back(std::move(example));
  }
  LrOptions options;
  options.epochs = 1;
  options.tolerance = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(TrainLogisticRegression(data, options));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 5000);
}
BENCHMARK(BM_LogisticRegressionEpoch)->Unit(benchmark::kMillisecond);

void BM_GenerateAdCorpus(benchmark::State& state) {
  AdCorpusOptions options;
  options.num_adgroups = static_cast<int>(state.range(0));
  for (auto _ : state) {
    options.seed++;
    benchmark::DoNotOptimize(GenerateAdCorpus(options));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_GenerateAdCorpus)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_RngBinomialLargeN(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Binomial(400000, 0.05));
  }
}
BENCHMARK(BM_RngBinomialLargeN);

}  // namespace
}  // namespace microbrowse

BENCHMARK_MAIN();
