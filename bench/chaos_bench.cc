// Copyright 2026 The Microbrowse Authors
//
// Chaos soak harness for the serving stack: a real Server on an ephemeral
// port, scoring latency injected through the serve.score delay failpoint,
// and a fleet of concurrent clients driving it through overload, tight
// deadlines, idle eviction, connection kills, a mid-run graceful drain
// and a server restart. Two phases:
//
//   accounting — raw synchronous clients (no retries, nothing hidden).
//     Every request must come back exactly once, and the server-side
//     counters must account for every request read:
//       sent == served + deadline_exceeded + rejected_overload + drained
//     with idle_evicted matching the deliberate idle probes exactly, and
//     round-trip p99 bounded by the roomy deadline.
//
//   chaos — resilient clients (serve/client.h) with full-jitter retries,
//     random self-inflicted disconnects, a graceful drain + restart in
//     the middle of the run. Invariant: zero crashes, zero hangs (a
//     watchdog aborts the run), and every Call ends ok or in a clean,
//     classified refusal — never an unclassified error.
//
// Environment: MB_CHAOS_SECONDS total soak budget (default 6, split
// across the phases), MB_CHAOS_CLIENTS fleet size (default 32),
// MB_CHAOS_SEED, MB_CHAOS_IO_MODEL serving core ("epoll" default,
// "threads" for the legacy path — the CI chaos job soaks both),
// MB_CHAOS_EPOLL_MODE reactor triggering ("edge" default, "level" for the
// baseline mode — ignored by the threads core; the CI matrix soaks both),
// MB_BENCH_OUT report path (default BENCH_chaos.json). Exits non-zero if
// any invariant fails — the CI chaos job runs this under ASan.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/socket.h"
#include "common/string_util.h"
#include "corpus/generator.h"
#include "corpus/pair_extraction.h"
#include "eval/experiments.h"
#include "io/atomic_file.h"
#include "io/serialization.h"
#include "microbrowse/classifier.h"
#include "microbrowse/stats_db.h"
#include "serve/bundle.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/service.h"

using namespace microbrowse;

namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

struct Tally {
  int64_t sent = 0;
  int64_t ok = 0;
  int64_t deadline_exceeded = 0;
  int64_t overloaded = 0;
  int64_t draining = 0;
  int64_t other_error = 0;  ///< Unclassified — any of these fails the run.
  int64_t hangs = 0;        ///< Response never arrived within the timeout.

  void Add(const Tally& other) {
    sent += other.sent;
    ok += other.ok;
    deadline_exceeded += other.deadline_exceeded;
    overloaded += other.overloaded;
    draining += other.draining;
    other_error += other.other_error;
    hangs += other.hangs;
  }
};

/// One raw synchronous connection: send a line, read exactly one response.
/// The receive timeout turns a lost response into a counted hang instead of
/// a stuck harness.
class RawClient {
 public:
  static std::unique_ptr<RawClient> ConnectTo(uint16_t port) {
    auto socket = TcpConnect("127.0.0.1", port);
    if (!socket.ok()) return nullptr;
    auto client = std::make_unique<RawClient>();
    client->socket_ = std::make_unique<Socket>(std::move(*socket));
    (void)SetRecvTimeoutMs(*client->socket_, 10'000);
    client->reader_ = std::make_unique<LineReader>(*client->socket_);
    return client;
  }

  /// Round trip; classifies the response into `tally` and records latency.
  void RoundTrip(const std::string& line, Tally* tally, Histogram* latency) {
    tally->sent++;
    const auto start = steady_clock::now();
    if (!SendAll(*socket_, line + "\n").ok()) {
      tally->hangs++;  // Phase A has no kills: a dead connection is a bug.
      return;
    }
    std::string response_line;
    auto got = reader_->ReadLine(&response_line);
    if (!got.ok() || !*got) {
      tally->hangs++;
      return;
    }
    latency->Record(std::chrono::duration_cast<std::chrono::duration<double>>(
                        steady_clock::now() - start)
                        .count());
    auto response = serve::ParseRequest(response_line);
    if (!response.ok()) {
      tally->other_error++;
      return;
    }
    if (response->Get("ok") == "true") {
      tally->ok++;
    } else if (response->Get("error") == "deadline_exceeded") {
      tally->deadline_exceeded++;
    } else if (response->Get("error") == "overloaded") {
      tally->overloaded++;
    } else if (response->Get("error") == "draining") {
      tally->draining++;
    } else {
      tally->other_error++;
    }
  }

 private:
  std::unique_ptr<Socket> socket_;
  std::unique_ptr<LineReader> reader_;
};

std::string ScoreLine(const std::string& salt, int64_t deadline_ms) {
  serve::JsonWriter request;
  request.String("type", "score_pair")
      .String("a", "cheap flights today|book " + salt)
      .String("b", "late deals|save " + salt);
  if (deadline_ms > 0) request.Int("deadline_ms", deadline_ms);
  return request.Finish();
}

int Fail(const char* what) {
  std::fprintf(stderr, "chaos_bench FAILED: %s\n", what);
  return 1;
}

}  // namespace

int main() {
  const int total_seconds = static_cast<int>(EnvInt("MB_CHAOS_SECONDS", 6));
  const int fleet = static_cast<int>(EnvInt("MB_CHAOS_CLIENTS", 32));
  const uint64_t seed = static_cast<uint64_t>(EnvInt("MB_CHAOS_SEED", 2026));
  const char* io_model_env = std::getenv("MB_CHAOS_IO_MODEL");
  const std::string io_model_name =
      io_model_env != nullptr && std::string(io_model_env) == "threads" ? "threads"
                                                                        : "epoll";
  const serve::IoModel io_model = io_model_name == "threads"
                                      ? serve::IoModel::kLegacyThreads
                                      : serve::IoModel::kEpoll;
  const char* epoll_mode_env = std::getenv("MB_CHAOS_EPOLL_MODE");
  const std::string epoll_mode_name =
      epoll_mode_env != nullptr && std::string(epoll_mode_env) == "level" ? "level"
                                                                          : "edge";
  const serve::EpollMode epoll_mode = epoll_mode_name == "level"
                                          ? serve::EpollMode::kLevel
                                          : serve::EpollMode::kEdge;
  const int phase_ms = total_seconds * 1000 / 2;
  constexpr int kIdleProbes = 4;
  // Tight is chosen below the typical queue wait (a full 8-deep queue at
  // ~10 ms scoring across 4 workers waits ~20 ms), roomy far above it.
  constexpr int64_t kTightDeadlineMs = 5;
  constexpr int64_t kRoomyDeadlineMs = 5000;

  // Stage a bundle the way mbserved consumes it.
  AdCorpusOptions corpus_options;
  corpus_options.num_adgroups = 60;
  corpus_options.seed = seed;
  auto generated = GenerateAdCorpus(corpus_options);
  if (!generated.ok()) return Fail(generated.status().ToString().c_str());
  const PairCorpus pairs = ExtractSignificantPairs(generated->corpus, {});
  const FeatureStatsDb db = BuildFeatureStats(pairs, {});
  const ClassifierConfig config = ClassifierConfig::M6();
  const CoupledDataset dataset = BuildClassifierDataset(pairs, db, config, seed);
  auto model = TrainSnippetClassifier(dataset, config);
  if (!model.ok()) return Fail(model.status().ToString().c_str());
  const std::string dir = "chaos_bench_artifacts";
  if (!CreateDirectories(dir).ok()) return Fail("mkdir artifacts");
  serve::BundlePaths paths;
  paths.model_path = dir + "/model.txt";
  paths.stats_path = dir + "/stats.tsv";
  if (!SaveClassifier(*model, dataset.t_registry, dataset.p_registry, paths.model_path)
           .ok() ||
      !SaveFeatureStats(db, paths.stats_path).ok()) {
    return Fail("staging bundle");
  }
  serve::BundleRegistry registry;
  if (!registry.LoadInitial(paths).ok()) return Fail("bundle load");

  // Inject a little scoring latency on every cache miss so queues actually
  // form; salted snippets below keep every request a miss.
  failpoint::Spec delay;
  delay.mode = failpoint::Spec::Mode::kDelay;
  delay.delay_ms = 10;
  failpoint::Activate("serve.score", delay);

  // Watchdog: the whole soak is time-bounded by construction; if it is
  // still running at 5x the budget plus a minute, something hangs — which
  // is itself the most important finding. Abort loudly.
  std::atomic<bool> done{false};
  std::thread watchdog([&done, total_seconds] {
    const auto limit = steady_clock::now() +
                       std::chrono::seconds(60 + 5 * std::max(1, total_seconds));
    while (!done.load(std::memory_order_acquire)) {
      if (steady_clock::now() > limit) {
        std::fprintf(stderr, "chaos_bench FAILED: watchdog — harness hung\n");
        std::fflush(stderr);
        std::_Exit(2);
      }
      std::this_thread::sleep_for(milliseconds(100));
    }
  });

  // ---------------------------------------------------------------- Phase A
  std::printf(
      "chaos_bench phase A (accounting): %d clients + %d idle probes, %d ms, "
      "%s core (%s-triggered)\n",
      fleet, kIdleProbes, phase_ms, io_model_name.c_str(), epoll_mode_name.c_str());
  serve::ServerOptions options_a;
  options_a.io_model = io_model;
  options_a.epoll_mode = epoll_mode;
  options_a.port = 0;
  options_a.num_threads = 4;
  options_a.max_queue = 8;  // Small on purpose: overload must actually happen.
  options_a.idle_timeout_ms = 400;
  serve::ServiceOptions service_options;
  service_options.cache_capacity = 0;  // Every request does real work.
  serve::ScoringService service_a(&registry, service_options);
  serve::Server server_a(&service_a, options_a);
  auto port_a = server_a.Start();
  if (!port_a.ok()) return Fail(port_a.status().ToString().c_str());

  // Idle probes: connect, say nothing, expect eviction. They send zero
  // requests, so they cannot perturb the accounting.
  std::vector<std::unique_ptr<RawClient>> idle_probes;
  for (int i = 0; i < kIdleProbes; ++i) {
    auto probe = RawClient::ConnectTo(*port_a);
    if (probe == nullptr) return Fail("idle probe connect");
    idle_probes.push_back(std::move(probe));
  }

  std::vector<Tally> tallies(static_cast<size_t>(fleet));
  std::vector<Histogram> latencies(static_cast<size_t>(fleet));
  {
    std::vector<std::thread> workers;
    for (int w = 0; w < fleet; ++w) {
      workers.emplace_back([&, w] {
        Rng rng(seed ^ (0x9e3779b9u + static_cast<uint64_t>(w)));
        auto client = RawClient::ConnectTo(*port_a);
        if (client == nullptr) {
          tallies[static_cast<size_t>(w)].hangs++;
          return;
        }
        const auto stop_at = steady_clock::now() + milliseconds(phase_ms);
        uint64_t nonce = 0;
        while (steady_clock::now() < stop_at) {
          const std::string salt =
              "w" + std::to_string(w) + "n" + std::to_string(nonce++);
          // Mix: mostly scoring with alternating tight/roomy deadlines,
          // plus the occasional health probe riding the same connection.
          std::string line;
          const double roll = rng.NextDouble();
          if (roll < 0.05) {
            line = R"({"type":"healthz"})";
          } else if (roll < 0.5) {
            line = ScoreLine(salt, kTightDeadlineMs);
          } else {
            line = ScoreLine(salt, kRoomyDeadlineMs);
          }
          client->RoundTrip(line, &tallies[static_cast<size_t>(w)],
                            &latencies[static_cast<size_t>(w)]);
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  }

  // Let the reaper finish with the idle probes before reading its counter.
  for (int i = 0; i < 200 && server_a.active_connections() > 0; ++i) {
    std::this_thread::sleep_for(milliseconds(10));
  }
  Tally phase_a;
  Histogram::Accumulator latency_acc;
  for (const Tally& tally : tallies) phase_a.Add(tally);
  for (const Histogram& histogram : latencies) histogram.AccumulateTo(&latency_acc);
  server_a.Stop();

  const int64_t served = [&] {
    int64_t total = 0;
    for (int i = 0; i < serve::kNumEndpoints; ++i) {
      total += service_a.metrics().endpoint(static_cast<serve::Endpoint>(i)).requests();
    }
    return total;
  }();
  const int64_t deadline_ctr = service_a.metrics().deadline_exceeded->Value();
  const int64_t overload_ctr = service_a.metrics().rejected_overload->Value();
  const int64_t drained_ctr = service_a.metrics().drained->Value();
  const int64_t idle_ctr = service_a.metrics().idle_evicted->Value();
  const HistogramSnapshot latency = Histogram::SnapshotFrom(latency_acc);

  std::printf(
      "  sent=%lld ok=%lld deadline=%lld overloaded=%lld draining=%lld "
      "other=%lld hangs=%lld\n"
      "  server: served=%lld deadline=%lld overloaded=%lld drained=%lld "
      "idle_evicted=%lld\n"
      "  latency p50=%.1fms p99=%.1fms\n",
      static_cast<long long>(phase_a.sent), static_cast<long long>(phase_a.ok),
      static_cast<long long>(phase_a.deadline_exceeded),
      static_cast<long long>(phase_a.overloaded),
      static_cast<long long>(phase_a.draining),
      static_cast<long long>(phase_a.other_error),
      static_cast<long long>(phase_a.hangs), static_cast<long long>(served),
      static_cast<long long>(deadline_ctr), static_cast<long long>(overload_ctr),
      static_cast<long long>(drained_ctr), static_cast<long long>(idle_ctr),
      latency.p50 * 1e3, latency.p99 * 1e3);

  bool ok = true;
  if (phase_a.hangs != 0) ok = !Fail("phase A: a request went unanswered");
  if (phase_a.other_error != 0) ok = !Fail("phase A: unclassified error responses");
  if (phase_a.ok + phase_a.deadline_exceeded + phase_a.overloaded + phase_a.draining +
          phase_a.hangs !=
      phase_a.sent) {
    ok = !Fail("phase A: client-side accounting does not sum");
  }
  if (served + deadline_ctr + overload_ctr + drained_ctr != phase_a.sent) {
    ok = !Fail("phase A: server counters do not account for every request");
  }
  if (deadline_ctr != phase_a.deadline_exceeded) {
    ok = !Fail("phase A: deadline_exceeded counter mismatch");
  }
  if (overload_ctr != phase_a.overloaded) {
    ok = !Fail("phase A: rejected_overload counter mismatch");
  }
  if (idle_ctr != kIdleProbes) ok = !Fail("phase A: idle_evicted != idle probes");
  if (phase_a.ok == 0) ok = !Fail("phase A: nothing succeeded");
  if (phase_a.deadline_exceeded == 0) {
    ok = !Fail("phase A: tight deadlines never tripped — no queue pressure");
  }
  // Every answer must arrive within the roomy deadline plus one scoring
  // pass and scheduler slack; far past it means deadlines are not bounding
  // the tail.
  const double p99_bound_ms = static_cast<double>(kRoomyDeadlineMs) + 1000.0;
  if (latency.p99 * 1e3 > p99_bound_ms) ok = !Fail("phase A: p99 above deadline bound");

  // ---------------------------------------------------------------- Phase B
  const int chaos_fleet = std::max(4, fleet / 2);
  std::printf("chaos_bench phase B (chaos): %d resilient clients, %d ms, "
              "drain+restart at midpoint\n",
              chaos_fleet, phase_ms);
  serve::ServerOptions options_b;
  options_b.io_model = io_model;
  options_b.epoll_mode = epoll_mode;
  options_b.port = 0;
  options_b.num_threads = 4;
  options_b.max_queue = 64;
  options_b.idle_timeout_ms = 2000;
  options_b.drain_deadline_ms = 500;
  serve::ScoringService service_b(&registry, service_options);
  auto server_b = std::make_unique<serve::Server>(&service_b, options_b);
  auto port_b = server_b->Start();
  if (!port_b.ok()) return Fail(port_b.status().ToString().c_str());
  const uint16_t chaos_port = *port_b;

  std::atomic<int64_t> chaos_sent{0};
  std::atomic<int64_t> chaos_ok{0};
  std::atomic<int64_t> chaos_refused{0};  // Unavailable / deadline after retries.
  std::atomic<int64_t> chaos_failed{0};   // Anything unclassified.
  std::atomic<int64_t> chaos_retries{0};
  {
    std::vector<std::thread> workers;
    std::vector<Rng> rngs;
    rngs.reserve(static_cast<size_t>(chaos_fleet));
    for (int w = 0; w < chaos_fleet; ++w) {
      rngs.emplace_back(seed ^ (0xc0ffee00u + static_cast<uint64_t>(w)));
    }
    for (int w = 0; w < chaos_fleet; ++w) {
      workers.emplace_back([&, w] {
        Rng& rng = rngs[static_cast<size_t>(w)];
        serve::ClientOptions client_options;
        client_options.port = chaos_port;
        client_options.retry.max_attempts = 10;
        client_options.retry.initial_backoff_ms = 20;
        client_options.retry.max_backoff_ms = 500;
        client_options.retry.rng = &rng;
        client_options.recv_timeout_ms = 5000;
        serve::ResilientClient client(client_options);
        const auto stop_at = steady_clock::now() + milliseconds(phase_ms);
        uint64_t nonce = 0;
        while (steady_clock::now() < stop_at) {
          // Self-inflicted connection kill ~5% of the time: the next Call
          // must ride the retry loop through the reconnect.
          if (rng.NextDouble() < 0.05) client.Disconnect();
          const std::string salt =
              "b" + std::to_string(w) + "n" + std::to_string(nonce++);
          chaos_sent.fetch_add(1, std::memory_order_relaxed);
          auto result = client.Call(ScoreLine(salt, kRoomyDeadlineMs));
          if (result.ok()) {
            chaos_ok.fetch_add(1, std::memory_order_relaxed);
          } else {
            const StatusCode code = result.status().code();
            if (code == StatusCode::kUnavailable || code == StatusCode::kIOError ||
                code == StatusCode::kDeadlineExceeded) {
              // Clean, classified refusal after the retry budget — legal
              // during the drain/restart window.
              chaos_refused.fetch_add(1, std::memory_order_relaxed);
            } else {
              chaos_failed.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
        chaos_retries.fetch_add(client.stats().retries, std::memory_order_relaxed);
      });
    }

    // Mid-run: graceful drain, then restart on the same port. Clients see
    // "draining" refusals, dead connections, a connect-refused window —
    // and must come out the other side without an unclassified failure.
    std::this_thread::sleep_for(milliseconds(phase_ms / 2));
    (void)server_b->Drain();
    server_b.reset();
    serve::ServerOptions options_restart = options_b;
    options_restart.port = chaos_port;
    server_b = std::make_unique<serve::Server>(&service_b, options_restart);
    auto restarted = server_b->Start();
    if (!restarted.ok()) {
      // Keep the fleet draining to a clean join; the missing server shows
      // up as refusals, and the bind failure fails the run below.
      std::fprintf(stderr, "restart failed: %s\n",
                   restarted.status().ToString().c_str());
    }
    for (std::thread& worker : workers) worker.join();
    if (!restarted.ok()) ok = !Fail("phase B: restart on the same port failed");
  }
  server_b->Stop();

  std::printf("  sent=%lld ok=%lld refused=%lld failed=%lld retries=%lld drained=%lld\n",
              static_cast<long long>(chaos_sent.load()),
              static_cast<long long>(chaos_ok.load()),
              static_cast<long long>(chaos_refused.load()),
              static_cast<long long>(chaos_failed.load()),
              static_cast<long long>(chaos_retries.load()),
              static_cast<long long>(service_b.metrics().drained->Value()));
  if (chaos_failed.load() != 0) ok = !Fail("phase B: unclassified failures");
  if (chaos_ok.load() == 0) ok = !Fail("phase B: nothing succeeded");
  if (chaos_ok.load() + chaos_refused.load() + chaos_failed.load() != chaos_sent.load()) {
    ok = !Fail("phase B: accounting does not sum");
  }

  done.store(true, std::memory_order_release);
  watchdog.join();

  // Report (plain ofstream on purpose: the artifact-checksum footer would
  // confuse generic JSON consumers).
  const char* env_out = std::getenv("MB_BENCH_OUT");
  const std::string out_path =
      env_out != nullptr && *env_out != '\0' ? env_out : "BENCH_chaos.json";
  std::ofstream out(out_path);
  out << "{\n"
      << "  \"io_model\": \"" << io_model_name << "\",\n"
      << "  \"epoll_mode\": \"" << epoll_mode_name << "\",\n"
      << "  \"phase_a\": {\"sent\": " << phase_a.sent << ", \"ok\": " << phase_a.ok
      << ", \"deadline_exceeded\": " << phase_a.deadline_exceeded
      << ", \"overloaded\": " << phase_a.overloaded
      << ", \"idle_evicted\": " << idle_ctr
      << ", \"latency_p50_ms\": " << StrFormat("%.3f", latency.p50 * 1e3)
      << ", \"latency_p99_ms\": " << StrFormat("%.3f", latency.p99 * 1e3) << "},\n"
      << "  \"phase_b\": {\"sent\": " << chaos_sent.load()
      << ", \"ok\": " << chaos_ok.load() << ", \"refused\": " << chaos_refused.load()
      << ", \"failed\": " << chaos_failed.load()
      << ", \"retries\": " << chaos_retries.load() << "},\n"
      << "  \"invariants_ok\": " << (ok ? "true" : "false") << "\n}\n";
  out.close();
  std::printf("chaos_bench: report written to %s — %s\n", out_path.c_str(),
              ok ? "ALL INVARIANTS HELD" : "INVARIANT FAILURES (see above)");
  return ok ? 0 : 1;
}
