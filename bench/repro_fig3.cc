// Copyright 2026 The Microbrowse Authors
//
// Reproduces Figure 3 of the paper: the learned term position weights for
// snippet lines 1-3. The paper plots the position factor learned by the
// coupled logistic regression — weights decrease with the position inside
// a line and from line 1 to line 3, mirroring how users actually scan a
// snippet.
//
// Environment: MB_ADGROUPS, MB_SEED.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/csv.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "eval/experiments.h"
#include "microbrowse/ctr_predictor.h"

int main() {
  using namespace microbrowse;

  ExperimentOptions options;
  options.num_adgroups = static_cast<int>(EnvInt("MB_ADGROUPS", 6000));
  options.seed = static_cast<uint64_t>(EnvInt("MB_SEED", 2026));

  auto result = RunFig3(options);
  if (!result.ok()) {
    std::fprintf(stderr, "Figure 3 experiment failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  TablePrinter table(
      "FIGURE 3: LEARNED TERM POSITION WEIGHTS (LINE 1, 2, 3)\n"
      "(position factor of the coupled LR in model M6; '-' = position unseen)");
  std::vector<std::string> header = {"Line"};
  const size_t buckets = result->weights.empty() ? 0 : result->weights[0].size();
  for (size_t b = 0; b < buckets; ++b) header.push_back(StrFormat("pos %zu", b));
  table.SetHeader(header);

  CsvWriter csv;
  if (!csv.Open("fig3.csv").ok()) std::fprintf(stderr, "warning: cannot write fig3.csv\n");
  if (csv.is_open()) {
    std::vector<std::string> csv_header = {"line"};
    for (size_t b = 0; b < buckets; ++b) csv_header.push_back(StrFormat("pos%zu", b));
    (void)csv.WriteRow(csv_header);
  }
  for (size_t line = 0; line < result->weights.size(); ++line) {
    std::vector<std::string> row = {StrFormat("line %zu", line + 1)};
    std::vector<std::string> csv_row = {StrFormat("%zu", line + 1)};
    for (size_t b = 0; b < buckets; ++b) {
      const double w = result->weights[line][b];
      row.push_back(std::isnan(w) ? "-" : FormatDouble(w, 3));
      csv_row.push_back(std::isnan(w) ? "" : FormatDouble(w, 5));
    }
    table.AddRow(row);
    if (csv.is_open()) (void)csv.WriteRow(csv_row);
  }
  (void)csv.Close();
  table.Print(std::cout);

  // Summarize the grid with the parametric examination-curve fit.
  auto fitted = FitExaminationCurve(result->weights);
  if (fitted.ok()) {
    std::printf("\nfitted parametric curve: line bases =");
    for (double base : fitted->line_bases()) std::printf(" %.3f", base);
    std::printf(", within-line decay = %.3f per position\n", fitted->pos_decay());
  }
  std::printf(
      "\nExpected shape (paper's Figure 3): weights decay with position within\n"
      "a line and drop from line 1 to line 3.\nWrote fig3.csv\n");
  return 0;
}
