// Copyright 2026 The Microbrowse Authors
//
// Scaling study: how the reproduction's accuracies and runtimes move with
// corpus size. Supports the claim in EXPERIMENTS.md that the shape
// (position-blind vs position-aware gap) is stable once the corpus reaches
// a few thousand adgroups.
//
// Environment: MB_FOLDS (default 4), MB_SEED.

#include <cstdio>
#include <iostream>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "eval/experiments.h"

int main() {
  using namespace microbrowse;

  const int folds = static_cast<int>(EnvInt("MB_FOLDS", 4));
  const uint64_t seed = static_cast<uint64_t>(EnvInt("MB_SEED", 2026));

  TablePrinter table("SCALING: accuracy and runtime vs corpus size (M1 vs M6)");
  table.SetHeader({"Adgroups", "Pairs", "M1 acc", "M6 acc", "Gap", "Seconds"});

  for (int adgroups : {500, 1000, 2000, 4000}) {
    ExperimentOptions options;
    options.num_adgroups = adgroups;
    options.folds = folds;
    options.seed = seed;
    options.Normalize();
    auto pairs = MakePairCorpus(options, Placement::kTop);
    if (!pairs.ok()) {
      std::fprintf(stderr, "corpus failed: %s\n", pairs.status().ToString().c_str());
      return 1;
    }
    WallTimer timer;
    auto m1 = RunPairClassificationCv(*pairs, ClassifierConfig::M1(), options.pipeline);
    auto m6 = RunPairClassificationCv(*pairs, ClassifierConfig::M6(), options.pipeline);
    if (!m1.ok() || !m6.ok()) {
      std::fprintf(stderr, "pipeline failed\n");
      return 1;
    }
    table.AddRow({StrFormat("%d", adgroups), StrFormat("%zu", pairs->pairs.size()),
                  FormatPercent(m1->metrics.accuracy()), FormatPercent(m6->metrics.accuracy()),
                  StrFormat("%+.1fpp",
                            (m6->metrics.accuracy() - m1->metrics.accuracy()) * 100.0),
                  FormatDouble(timer.ElapsedSeconds(), 1)});
    std::fflush(stdout);
  }
  table.Print(std::cout);
  std::printf("\nThe M6-over-M1 gap is the paper's effect; it should be present at\n"
              "every scale and stabilise as the statistics database densifies.\n");
  return 0;
}
