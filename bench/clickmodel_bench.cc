// Copyright 2026 The Microbrowse Authors
//
// Click-model comparison bench (the Section II substrate): simulates a
// SERP click log from a ground-truth DBN, fits every macro browsing model,
// and reports held-out log-likelihood, perplexity and CTR Brier score —
// the standard click-model scoreboard. Also reports fit wall time.
//
// Environment: MB_SESSIONS (default 80000), MB_SEED.

#include <cstdio>
#include <iostream>
#include <memory>

#include "clickmodels/cascade.h"
#include "clickmodels/ccm.h"
#include "clickmodels/dbn.h"
#include "clickmodels/dcm.h"
#include "clickmodels/evaluation.h"
#include "clickmodels/noise_aware.h"
#include "clickmodels/pbm.h"
#include "clickmodels/simulator.h"
#include "clickmodels/ubm.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "eval/experiments.h"

int main() {
  using namespace microbrowse;

  SerpSimulatorOptions options;
  options.num_queries = 60;
  options.docs_per_query = 15;
  options.positions = 8;
  options.num_sessions = static_cast<int>(EnvInt("MB_SESSIONS", 80000));
  options.seed = static_cast<uint64_t>(EnvInt("MB_SEED", 31));

  Rng rng(options.seed);
  const SerpGroundTruth truth = MakeSerpGroundTruth(options, &rng);
  const DbnModel generator(truth.attraction, QueryDocTable(0.45), /*gamma=*/0.85);

  auto train_log = SimulateSerpLog(options, truth, generator, &rng);
  auto test_log = SimulateSerpLog(options, truth, generator, &rng);
  if (!train_log.ok() || !test_log.ok()) {
    std::fprintf(stderr, "simulation failed\n");
    return 1;
  }
  std::printf("SERP log: %zu train / %zu test sessions, %d positions, DBN ground truth\n",
              train_log->sessions.size(), test_log->sessions.size(), options.positions);

  std::vector<std::unique_ptr<ClickModel>> models;
  models.push_back(std::make_unique<PositionBasedModel>());
  models.push_back(std::make_unique<CascadeModel>());
  models.push_back(std::make_unique<DependentClickModel>());
  models.push_back(std::make_unique<UserBrowsingModel>());
  models.push_back(std::make_unique<ClickChainModel>());
  models.push_back(std::make_unique<NoiseAwareClickModel>());
  models.push_back(std::make_unique<SimplifiedDbnModel>());
  models.push_back(std::make_unique<DbnModel>());

  TablePrinter table("CLICK MODEL COMPARISON (held-out test log; DBN is the true model)");
  table.SetHeader({"Model", "LogLik/obs", "Perplexity", "CTR Brier", "Fit (s)"});
  for (auto& model : models) {
    WallTimer timer;
    const Status status = model->Fit(*train_log);
    const double fit_seconds = timer.ElapsedSeconds();
    if (!status.ok()) {
      std::fprintf(stderr, "%s fit failed: %s\n", std::string(model->name()).c_str(),
                   status.ToString().c_str());
      continue;
    }
    const ClickModelEvaluation eval = EvaluateClickModel(*model, *test_log);
    table.AddRow({std::string(model->name()), FormatDouble(eval.avg_log_likelihood, 4),
                  FormatDouble(eval.perplexity, 4), FormatDouble(eval.ctr_mse, 4),
                  FormatDouble(fit_seconds, 2)});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected: the models with relevance-dependent continuation (DBN — the\n"
      "true family — and CCM) attain the best held-out log-likelihood; Cascade\n"
      "is worst (it cannot express multi-click sessions).\n");
  return 0;
}
