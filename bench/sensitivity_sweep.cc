// Copyright 2026 The Microbrowse Authors
//
// Sensitivity sweep over the synthetic-corpus generator: how do the
// classifier variants respond to relevance heterogeneity (keyword jitter),
// click-sampling noise (impressions) and the mix of move vs rewrite
// mutations? This is the tool that was used to pick the default corpus
// regime in eval/experiments.h, kept as an ablation bench.
//
// Usage: sensitivity_sweep [jitter impressions move_weight second_mut
//                           adgroups folds]
// With no arguments runs a default grid.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "eval/experiments.h"

using namespace microbrowse;

namespace {

struct SweepPoint {
  double jitter;
  int64_t impressions;
  double move_weight;
  double second_mutation;
  double creative_noise;
};

void RunPoint(const SweepPoint& point, int adgroups, int folds) {
  ExperimentOptions options;
  options.num_adgroups = adgroups;
  options.folds = folds;
  options.corpus.relevance_jitter = point.jitter;
  options.corpus.base_impressions = point.impressions;
  options.corpus.move_mutation_weight = point.move_weight;
  options.corpus.mutation_continue_prob = point.second_mutation;
  options.corpus.creative_noise_sigma = point.creative_noise;
  options.Normalize();

  auto pairs = MakePairCorpus(options, Placement::kTop);
  if (!pairs.ok()) {
    std::fprintf(stderr, "corpus failed: %s\n", pairs.status().ToString().c_str());
    return;
  }
  std::printf("jitter=%.2f impr=%lld move=%.2f mut2=%.2f cnoise=%.2f pairs=%zu | ",
              point.jitter, static_cast<long long>(point.impressions), point.move_weight,
              point.second_mutation, point.creative_noise, pairs->pairs.size());
  for (const ClassifierConfig& config : ClassifierConfig::AllPaperModels()) {
    auto report = RunPairClassificationCv(*pairs, config, options.pipeline);
    if (!report.ok()) {
      std::fprintf(stderr, "%s failed\n", config.name.c_str());
      return;
    }
    std::printf("%s=%.3f ", config.name.c_str(), report->metrics.accuracy());
    std::fflush(stdout);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const int adgroups = static_cast<int>(EnvInt("MB_ADGROUPS", 1500));
  const int folds = static_cast<int>(EnvInt("MB_FOLDS", 5));

  if (argc == 6) {
    RunPoint(SweepPoint{std::atof(argv[1]), std::atoll(argv[2]), std::atof(argv[3]),
                        std::atof(argv[4]), std::atof(argv[5])},
             adgroups, folds);
    return 0;
  }

  const std::vector<SweepPoint> grid = {
      {0.40, 400000, 0.30, 0.65, 0.00},  // default regime without non-text noise
      {0.40, 400000, 0.30, 0.65, 0.05},  // the shipped default
      {0.40, 400000, 0.30, 0.65, 0.15},  // heavy non-text noise
  };
  for (const SweepPoint& point : grid) RunPoint(point, adgroups, folds);
  return 0;
}
