// Copyright 2026 The Microbrowse Authors
//
// Design-choice ablations beyond the paper's own M1-M6 sweep (DESIGN.md
// experiment E6):
//   1. Rewrite-matching strategy: the paper's stats-guided greedy matcher
//      vs. naive first-match and locality-only matching.
//   2. Warm-start initialisation from the feature-statistics database
//      on vs. off.
//   3. Coupled-LR alternation depth (1 vs. 3 rounds).
//   4. Statistics-database matching passes (1 vs. 2).
//
// Environment: MB_ADGROUPS (default 2500), MB_FOLDS, MB_SEED.

#include <cstdio>
#include <iostream>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "eval/experiments.h"

int main() {
  using namespace microbrowse;

  ExperimentOptions options;
  options.num_adgroups = static_cast<int>(EnvInt("MB_ADGROUPS", 2500));
  options.folds = static_cast<int>(EnvInt("MB_FOLDS", 5));
  options.seed = static_cast<uint64_t>(EnvInt("MB_SEED", 2026));
  options.Normalize();

  auto pairs = MakePairCorpus(options, Placement::kTop);
  if (!pairs.ok()) {
    std::fprintf(stderr, "corpus failed: %s\n", pairs.status().ToString().c_str());
    return 1;
  }
  std::printf("ablation corpus: %zu pairs from %d adgroups\n\n", pairs->pairs.size(),
              options.num_adgroups);

  TablePrinter table("ABLATIONS (model M6 unless noted; accuracy under grouped CV)");
  table.SetHeader({"Variant", "Accuracy", "F-Measure", "AUC"});

  auto run = [&](const std::string& label, const ClassifierConfig& config,
                 const PipelineOptions& pipeline) {
    auto report = RunPairClassificationCv(*pairs, config, pipeline);
    if (!report.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", label.c_str(),
                   report.status().ToString().c_str());
      return;
    }
    table.AddRow({label, FormatPercent(report->metrics.accuracy()),
                  FormatDouble(report->metrics.f1(), 3), FormatDouble(report->auc, 3)});
    std::fprintf(stderr, "done: %s (%.1fs)\n", label.c_str(), report->train_seconds);
  };

  // 1. Matching strategy (exercised through M4, the rewrite-centric model).
  {
    ClassifierConfig config = ClassifierConfig::M4();
    run("M4, greedy stats matching (paper)", config, options.pipeline);
    config.matching = MatchingStrategy::kPositionOnly;
    run("M4, locality-only matching", config, options.pipeline);
    config.matching = MatchingStrategy::kFirstMatch;
    run("M4, naive first-match", config, options.pipeline);
  }

  // 2. Warm start from the statistics database.
  {
    ClassifierConfig config = ClassifierConfig::M6();
    run("M6, stats-db warm start (paper)", config, options.pipeline);
    config.init_from_stats = false;
    run("M6, zero initialisation", config, options.pipeline);
  }

  // 3. Coupled alternation depth.
  {
    ClassifierConfig config = ClassifierConfig::M6();
    config.coupled_iterations = 3;
    run("M6, 3 coupled rounds", config, options.pipeline);
  }

  // 4. Statistics matching passes.
  {
    PipelineOptions pipeline = options.pipeline;
    pipeline.stats.matching_passes = 1;
    run("M6, single stats pass", ClassifierConfig::M6(), pipeline);
  }

  // 5. Sparsity backoff for tail rewrites (off by default, matching the
  // paper; the variant enables it).
  {
    ClassifierConfig config = ClassifierConfig::M4();
    config.rewrite_min_support = 3;
    run("M4, tail-rewrite backoff at support 3", config, options.pipeline);
  }

  table.Print(std::cout);
  return 0;
}
